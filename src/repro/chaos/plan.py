"""Chaos plans: seeded, declarative fault schedules.

A :class:`ChaosPlan` is a root seed plus an ordered list of
:class:`ChaosRule` entries.  Whether a given hook crossing fires is a
*pure function* of ``(plan seed, rule index, site, key, attempt)`` —
the same spawn-seeded hash derivation as :mod:`repro.util.rng` — so
the same plan replays the identical fault schedule in any process, on
any host, regardless of thread or pool timing.

Rule fields (JSON spellings)::

    site         glob over site names, e.g. "campaign.worker.*"
    fault        crash | stall | disk-full | io-error | conn-reset
                 | torn-write
    p            per-crossing fire probability (default 1.0)
    key_pattern  regex the crossing's key must match (optional)
    max_attempt  only fire while the crossing's attempt <= this
                 (default 0: first attempts only, so retries succeed)
    limit        max fires for this rule per process (None = unlimited)
    delay_s      stall duration in seconds (stall faults, default 0.05)

Fault semantics are executed by the controller: ``crash`` hard-exits
the process (a worker kill), ``stall`` sleeps, ``disk-full`` and
``io-error`` raise ``OSError`` (ENOSPC / EIO), ``conn-reset`` raises
``ConnectionResetError``, and ``torn-write`` is returned to the site
so it can write a deterministic partial buffer before erroring.
"""

import errno
import fnmatch
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.util.rng import DeterministicRng, spawn_seed

#: Fault kinds and the errno (if any) their injected OSError carries.
FAULT_KINDS: Dict[str, Optional[int]] = {
    "crash": None,
    "stall": None,
    "disk-full": errno.ENOSPC,
    "io-error": errno.EIO,
    "conn-reset": errno.ECONNRESET,
    "torn-write": None,
}

PLAN_FORMAT_VERSION = 1


class ChaosPlanError(ValueError):
    """A plan file or rule dict is malformed."""


@dataclass(frozen=True)
class ChaosRule:
    """One (site pattern, trigger, fault) injection rule."""

    site: str
    fault: str
    p: float = 1.0
    key_pattern: Optional[str] = None
    max_attempt: int = 0
    limit: Optional[int] = None
    delay_s: float = 0.05

    def validate(self) -> "ChaosRule":
        if not self.site:
            raise ChaosPlanError("rule: site pattern must be non-empty")
        if self.fault not in FAULT_KINDS:
            raise ChaosPlanError(
                f"rule: unknown fault {self.fault!r}; expected one of "
                f"{sorted(FAULT_KINDS)}")
        if not 0.0 <= float(self.p) <= 1.0:
            raise ChaosPlanError(f"rule: p must be in [0, 1], got {self.p}")
        if self.key_pattern is not None:
            try:
                re.compile(self.key_pattern)
            except re.error as error:
                raise ChaosPlanError(
                    f"rule: bad key_pattern {self.key_pattern!r}: "
                    f"{error}") from None
        if int(self.max_attempt) < 0:
            raise ChaosPlanError("rule: max_attempt must be >= 0")
        if self.limit is not None and int(self.limit) < 1:
            raise ChaosPlanError("rule: limit must be >= 1 (or null)")
        if float(self.delay_s) < 0:
            raise ChaosPlanError("rule: delay_s must be >= 0")
        return self

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"site": self.site, "fault": self.fault,
                                   "p": self.p}
        if self.key_pattern is not None:
            data["key_pattern"] = self.key_pattern
        if self.max_attempt:
            data["max_attempt"] = self.max_attempt
        if self.limit is not None:
            data["limit"] = self.limit
        if self.fault == "stall":
            data["delay_s"] = self.delay_s
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosRule":
        if not isinstance(data, dict):
            raise ChaosPlanError(f"rule must be an object, got {data!r}")
        known = {"site", "fault", "p", "key_pattern", "max_attempt",
                 "limit", "delay_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ChaosPlanError(
                f"rule: unknown field(s) {unknown}; expected a subset "
                f"of {sorted(known)}")
        return cls(
            site=str(data.get("site", "")),
            fault=str(data.get("fault", "")),
            p=float(data.get("p", 1.0)),
            key_pattern=data.get("key_pattern"),
            max_attempt=int(data.get("max_attempt", 0)),
            limit=(None if data.get("limit") is None
                   else int(data["limit"])),
            delay_s=float(data.get("delay_s", 0.05)),
        ).validate()


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded, ordered fault schedule over instrumented sites."""

    seed: int = 0
    rules: Tuple[ChaosRule, ...] = field(default_factory=tuple)

    def validate(self) -> "ChaosPlan":
        for rule in self.rules:
            rule.validate()
        return self

    # -- decisions ---------------------------------------------------------
    def decides(self, rule_index: int, site: str, key: str,
                attempt: int) -> bool:
        """Does rule ``rule_index`` fire at this crossing?  Pure."""
        rule = self.rules[rule_index]
        if rule.p >= 1.0:
            return True
        if rule.p <= 0.0:
            return False
        return self._draw(rule_index, site, key, attempt) < rule.p

    def fraction(self, rule_index: int, site: str, key: str,
                 attempt: int) -> float:
        """Deterministic tear fraction in (0, 1) for torn-write faults."""
        draw = self._draw(rule_index, "torn", site, key, attempt)
        return min(0.95, max(0.05, draw))

    def _draw(self, *parts: object) -> float:
        return DeterministicRng.from_seed(
            spawn_seed(self.seed, "chaos", *parts)).random()

    # -- wire format -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": PLAN_FORMAT_VERSION,
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosPlan":
        if not isinstance(data, dict):
            raise ChaosPlanError(f"plan must be an object, got {data!r}")
        version = data.get("format_version", PLAN_FORMAT_VERSION)
        if version != PLAN_FORMAT_VERSION:
            raise ChaosPlanError(
                f"plan format_version {version!r} is not "
                f"{PLAN_FORMAT_VERSION}")
        rules = data.get("rules", [])
        if not isinstance(rules, list):
            raise ChaosPlanError("plan: rules must be a list")
        return cls(seed=int(data.get("seed", 0)),
                   rules=tuple(ChaosRule.from_dict(rule)
                               for rule in rules)).validate()

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ChaosPlanError(f"plan is not valid JSON: {error}") \
                from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path) -> "ChaosPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def save(self, path) -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    def matching_rules(self, site: str) -> List[int]:
        """Indices of rules whose site pattern covers ``site``."""
        return [index for index, rule in enumerate(self.rules)
                if fnmatch.fnmatchcase(site, rule.site)]


# -- presets ---------------------------------------------------------------

def soak_plan(seed: int = 0, crash_p: float = 0.15,
              include_serve: bool = True) -> ChaosPlan:
    """The acceptance soak schedule: every fault family, survivably.

    Rules are tuned so the resilience layer converges: crashes and disk
    errors fire only on first attempts (retries run clean), stalls stay
    under any plausible task timeout, and connection faults only hit
    idempotent GETs (which the client retries).  A campaign or serve
    round-trip under this plan must therefore produce byte-identical
    results to the fault-free run.
    """
    rules = [
        ChaosRule("campaign.worker.task", "crash", p=crash_p),
        ChaosRule("campaign.worker.task", "stall", p=0.1, delay_s=0.02,
                  max_attempt=3),
        ChaosRule("campaign.store.append", "torn-write", p=0.25),
        ChaosRule("campaign.store.append", "disk-full", p=0.15),
        ChaosRule("campaign.store.progress", "disk-full", p=0.3,
                  max_attempt=9),
    ]
    if include_serve:
        rules += [
            ChaosRule("serve.cache.put", "torn-write", p=1.0, limit=1),
            ChaosRule("serve.cache.get", "io-error", p=1.0, limit=1),
            ChaosRule("serve.scheduler.dispatch", "io-error", p=1.0,
                      limit=1),
            ChaosRule("serve.api.request", "conn-reset", p=0.2,
                      key_pattern=r"^GET /v1/jobs/", limit=2),
            ChaosRule("serve.api.response", "torn-write", p=0.2,
                      key_pattern=r"^GET /v1/jobs/", limit=2),
            ChaosRule("serve.client.request", "conn-reset", p=0.2,
                      key_pattern=r"^GET ", limit=2),
        ]
    return ChaosPlan(seed=seed, rules=tuple(rules)).validate()


PRESETS = {
    "soak": lambda seed: soak_plan(seed),
    "crash": lambda seed: ChaosPlan(seed=seed, rules=(
        ChaosRule("campaign.worker.task", "crash", p=0.25),)),
    "disk": lambda seed: ChaosPlan(seed=seed, rules=(
        ChaosRule("campaign.store.append", "torn-write", p=0.4),
        ChaosRule("campaign.store.append", "disk-full", p=0.2),
        ChaosRule("campaign.store.progress", "disk-full", p=0.5,
                  max_attempt=9),
        ChaosRule("serve.cache.put", "disk-full", p=0.5, max_attempt=9),
    )),
    "net": lambda seed: ChaosPlan(seed=seed, rules=(
        ChaosRule("serve.client.request", "conn-reset", p=0.3,
                  key_pattern=r"^GET "),
        ChaosRule("serve.api.request", "conn-reset", p=0.2,
                  key_pattern=r"^GET "),
        ChaosRule("serve.api.response", "torn-write", p=0.2,
                  key_pattern=r"^GET "),
    )),
}
