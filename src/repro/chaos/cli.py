"""``python -m repro chaos`` — plan / run / soak verbs.

Examples::

    # Write (or inspect) a seeded fault plan
    python -m repro chaos plan --preset soak --seed 7 --out plan.json
    python -m repro chaos plan --validate plan.json

    # Run a small campaign with the plan armed, report what fired
    python -m repro chaos run --plan plan.json --out runs/chaos --jobs 4

    # The acceptance soak: fault-free vs chaos-ridden runs must produce
    # byte-identical campaign artifacts and identical serve payloads
    python -m repro chaos soak --seed 7 --jobs 4

``soak`` is the headline robustness claim, executable: it runs the
same campaign twice — once clean, once under the full chaos schedule
(worker crashes, torn and failed disk writes, connection resets) — and
exits nonzero unless ``results.jsonl`` is byte-identical, a serve
round-trip returns the identical payload, and no temp files leaked.
"""

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.chaos.controller import arm, armed, controller, disarm
from repro.chaos.plan import (PRESETS, ChaosPlan, ChaosPlanError,
                              soak_plan)
from repro.obs import trace as obs_trace


def _load_or_preset(args: argparse.Namespace) -> ChaosPlan:
    if getattr(args, "plan", None):
        return ChaosPlan.load(args.plan)
    return PRESETS[args.preset](args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Deterministic infrastructure fault injection "
                    "(and proof the resilience layer survives it)")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    plan = sub.add_parser("plan", help="write, print, or validate a "
                                       "chaos plan")
    plan.add_argument("--preset", choices=sorted(PRESETS),
                      default="soak", help="rule-set preset")
    plan.add_argument("--seed", type=int, default=0,
                      help="plan seed (same seed = same fault schedule)")
    plan.add_argument("--out", default=None,
                      help="write the plan JSON here (default: stdout)")
    plan.add_argument("--validate", metavar="FILE", default=None,
                      help="validate an existing plan file instead")

    run = sub.add_parser("run", help="run a campaign with a plan armed")
    run.add_argument("--plan", default=None,
                     help="plan JSON file (default: --preset)")
    run.add_argument("--preset", choices=sorted(PRESETS), default="soak")
    run.add_argument("--seed", type=int, default=0,
                     help="plan seed (when using --preset)")
    run.add_argument("--out", required=True,
                     help="campaign artifact directory")
    run.add_argument("--jobs", type=int, default=2)
    run.add_argument("--injections", type=int, default=25)
    run.add_argument("--workloads", default="compress",
                     help="comma-separated benchmarks")
    run.add_argument("--instructions", type=int, default=150)
    run.add_argument("--warmup", type=int, default=20)
    run.add_argument("--campaign-seed", type=int, default=0)
    run.add_argument("--fresh", action="store_true")

    soak = sub.add_parser(
        "soak", help="clean vs chaos runs; fail unless byte-identical")
    soak.add_argument("--seed", type=int, default=0,
                      help="chaos plan seed")
    soak.add_argument("--jobs", type=int, default=2,
                      help="campaign worker processes")
    soak.add_argument("--injections", type=int, default=18,
                      help="campaign injections")
    soak.add_argument("--crash-p", type=float, default=0.15,
                      help="per-task worker crash probability")
    soak.add_argument("--no-serve", action="store_true",
                      help="skip the serve-daemon leg")
    soak.add_argument("--keep", metavar="DIR", default=None,
                      help="keep artifacts here (default: temp dir)")
    return parser


def cmd_plan(args: argparse.Namespace) -> int:
    if args.validate:
        try:
            plan = ChaosPlan.load(args.validate)
        except (OSError, ChaosPlanError) as error:
            print(f"invalid plan {args.validate}: {error}",
                  file=sys.stderr)
            return 1
        print(f"valid plan: {len(plan.rules)} rule(s), seed {plan.seed}")
        for index, rule in enumerate(plan.rules):
            print(f"  [{index}] {rule.site}: {rule.fault} p={rule.p}")
        return 0
    plan = PRESETS[args.preset](args.seed)
    if args.out:
        plan.save(args.out)
        print(f"wrote {args.preset} plan ({len(plan.rules)} rules, "
              f"seed {args.seed}) to {args.out}")
    else:
        print(plan.to_json())
    return 0


def _run_campaign_args(args: argparse.Namespace, out_dir,
                       fresh: bool = False) -> Dict[str, object]:
    from repro.campaign.engine import run_campaign
    from repro.campaign.spec import CampaignSpec

    workloads = tuple(w.strip() for w in args.workloads.split(",")
                      if w.strip())
    spec = CampaignSpec(
        kinds=("srt",), workloads=workloads,
        models=("transient-result",), injections=args.injections,
        seed=args.campaign_seed, instructions=args.instructions,
        warmup=args.warmup)
    return run_campaign(spec, out_dir, jobs=args.jobs, fresh=fresh)


def cmd_run(args: argparse.Namespace) -> int:
    try:
        plan = _load_or_preset(args)
    except (OSError, ChaosPlanError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    arm(plan)
    print(f"chaos: armed {len(plan.rules)} rule(s), seed {plan.seed}")
    try:
        summary = _run_campaign_args(args, args.out, fresh=args.fresh)
    finally:
        fired = controller().summary() if controller() else {}
        disarm()
    print(f"campaign: {summary['state']} "
          f"({summary['executed']} executed of "
          f"{summary['total_tasks']})")
    infra = summary.get("infra", {})
    print(f"infra:    pool_rebuilds={infra.get('pool_rebuilds', 0)} "
          f"chunk_retries={infra.get('chunk_retries', 0)} "
          f"quarantined={infra.get('quarantined', 0)}")
    print(f"fired (engine process): "
          f"{json.dumps(fired.get('by_fault', {}), sort_keys=True)} "
          f"(worker-process crashes surface as pool_rebuilds)")
    return 0 if summary["state"] in ("complete", "partial") else 1


# -- soak ------------------------------------------------------------------

def _check(name: str, ok: bool, detail: str = "") -> bool:
    status = "PASS" if ok else "FAIL"
    print(f"  [{status}] {name}" + (f" — {detail}" if detail else ""))
    return ok


def _soak_campaign(base: Path, plan: ChaosPlan,
                   args: argparse.Namespace) -> List[bool]:
    from repro.campaign.engine import run_campaign
    from repro.campaign.spec import CampaignSpec

    spec = CampaignSpec(
        kinds=("srt",), workloads=("compress",),
        models=("transient-result",), injections=args.injections,
        seed=0, instructions=120, warmup=10)
    clean_dir, chaos_dir = base / "clean", base / "chaos"
    clean_dir.mkdir(parents=True, exist_ok=True)
    chaos_dir.mkdir(parents=True, exist_ok=True)
    print("campaign leg:")
    # Trace both legs: the normalized span log (timing fields stripped,
    # infrastructure spans dropped) must be byte-identical between the
    # fault-free and the fault-ridden run — the tracing analogue of the
    # results.jsonl determinism check below.
    with obs_trace.traced(clean_dir / "spans.jsonl", trace_id="soak"):
        clean = run_campaign(spec, clean_dir, jobs=args.jobs)
    with obs_trace.traced(chaos_dir / "spans.jsonl", trace_id="soak"), \
            armed(plan):
        chaotic = run_campaign(spec, chaos_dir, jobs=args.jobs)
    clean_bytes = (clean_dir / "results.jsonl").read_bytes()
    chaos_bytes = (chaos_dir / "results.jsonl").read_bytes()
    clean_spans = obs_trace.normalize_span_log(clean_dir / "spans.jsonl")
    chaos_spans = obs_trace.normalize_span_log(chaos_dir / "spans.jsonl")
    infra = chaotic.get("infra", {})
    checks = [
        _check("chaos campaign completed",
               chaotic["state"] == "complete",
               f"state={chaotic['state']}"),
        _check("faults actually fired",
               bool(infra.get("pool_rebuilds")),
               f"pool_rebuilds={infra.get('pool_rebuilds', 0)}, "
               f"chunk_retries={infra.get('chunk_retries', 0)}"),
        _check("results.jsonl byte-identical to fault-free run",
               clean_bytes == chaos_bytes,
               f"{len(chaos_bytes)} bytes"),
        _check("no quarantined tasks (all faults ridden out)",
               not infra.get("quarantined"),
               f"quarantined={infra.get('quarantined', 0)}"),
        _check("span log identical modulo timing/infra fields",
               bool(clean_spans) and clean_spans == chaos_spans,
               f"{len(clean_spans.splitlines())} normalized span(s)"),
    ]
    return checks


def _serve_payload(workdir: Path, args: argparse.Namespace,
                   plan: Optional[ChaosPlan]) -> Dict[str, object]:
    from repro.serve.api import BackgroundServer
    from repro.serve.client import ServeClient, reset_breakers

    params = {"kinds": ["srt"], "workloads": ["compress"],
              "models": ["transient-result"], "injections": 8,
              "instructions": 100, "warmup": 10, "jobs": args.jobs}
    reset_breakers()
    if plan is not None:
        arm(plan)
    try:
        with BackgroundServer(workdir=str(workdir), max_queue=8,
                              max_running=1) as handle:
            client = ServeClient(handle.url)
            client.ping()
            job = client.submit("campaign", params)["job"]
            final = client.wait_for(job["id"], timeout=300)
            result = client.result(final["job"]["id"])
            metrics = client.metrics()
    finally:
        if plan is not None:
            disarm()
        reset_breakers()
    return {"result": result["job"]["result"],
            "state": final["job"]["state"],
            "metrics": metrics}


def _soak_serve(base: Path, plan: ChaosPlan,
                args: argparse.Namespace) -> List[bool]:
    print("serve leg:")
    chaotic = _serve_payload(base / "serve-chaos", args, plan)
    clean = _serve_payload(base / "serve-clean", args, None)

    def comparable(payload):
        # artifact_dir embeds the (different) workdir path; everything
        # else in the result must match exactly.
        result = dict(payload["result"])
        result.pop("artifact_dir", None)
        return json.dumps(result, sort_keys=True)

    infra_requeues = chaotic["metrics"]["queue"].get("infra_requeues", 0)
    cache_write_errors = chaotic["metrics"]["cache"].get(
        "write_errors", 0)
    return [
        _check("chaos job finished done",
               chaotic["state"] == "done",
               f"state={chaotic['state']}"),
        _check("serve faults actually fired",
               bool(infra_requeues or cache_write_errors),
               f"infra_requeues={infra_requeues}, "
               f"cache_write_errors={cache_write_errors}"),
        _check("result payload identical to fault-free daemon",
               comparable(chaotic) == comparable(clean)),
    ]


def cmd_soak(args: argparse.Namespace) -> int:
    plan = soak_plan(seed=args.seed, crash_p=args.crash_p,
                     include_serve=not args.no_serve)
    base = Path(args.keep) if args.keep else Path(
        tempfile.mkdtemp(prefix="repro-chaos-soak-"))
    base.mkdir(parents=True, exist_ok=True)
    print(f"chaos soak: seed {args.seed}, {len(plan.rules)} rule(s), "
          f"artifacts in {base}")
    try:
        checks = _soak_campaign(base, plan, args)
        if not args.no_serve:
            checks += _soak_serve(base, plan, args)
        leaked = sorted(str(p.relative_to(base))
                        for p in base.rglob("*.tmp"))
        checks.append(_check("no leaked temp files", not leaked,
                             ", ".join(leaked) or "clean"))
    finally:
        disarm()
        if not args.keep:
            shutil.rmtree(base, ignore_errors=True)
    ok = all(checks)
    print(f"chaos soak: {'PASS' if ok else 'FAIL'} "
          f"({sum(checks)}/{len(checks)} checks)")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"plan": cmd_plan, "run": cmd_run, "soak": cmd_soak}
    try:
        return handlers[args.subcommand](args)
    except KeyboardInterrupt:
        disarm()
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
