"""repro.chaos — deterministic infrastructure fault injection.

The simulator's whole premise (Mukherjee et al., ISCA 2002) is that
transient faults are inevitable and systems must detect and recover
from them.  This package turns that discipline on the repo's *own*
infrastructure: a seeded :class:`ChaosPlan` of ``(site, trigger,
fault)`` rules drives lightweight :func:`chaos_point` hooks threaded
through the campaign engine, the artifact store, and the serve layer,
injecting worker crashes, stalls, torn writes, disk errors, and
connection resets on a schedule that is a pure function of the plan
seed — so every chaos run is replayable, and the resilience machinery
(pool rebuild, quarantine, retry/backoff, circuit breaker, graceful
degradation) can be proven to converge to byte-identical artifacts.

With no plan armed, :func:`chaos_point` is a two-instruction no-op.
"""

from repro.chaos.controller import (ChaosController, ChaosEvent, armed,
                                    arm, chaos_point, chaos_point_async,
                                    controller, disarm)
from repro.chaos.plan import (FAULT_KINDS, ChaosPlan, ChaosPlanError,
                              ChaosRule, soak_plan)

__all__ = [
    "FAULT_KINDS", "ChaosController", "ChaosEvent", "ChaosPlan",
    "ChaosPlanError", "ChaosRule", "arm", "armed", "chaos_point",
    "chaos_point_async", "controller", "disarm", "soak_plan",
]
