"""Typed, thread-safe metrics: counters, gauges, streaming histograms.

One :class:`MetricsRegistry` owns one lock; every metric it creates
shares that lock, so :meth:`MetricsRegistry.snapshot` is a *single*
acquisition that reads every counter, gauge, and histogram at one
consistent instant — the ``/metrics`` endpoint and ``repro metrics``
CLI can never observe a half-applied update.

Histograms use fixed log-scale buckets (growth factor ``2**(1/8)``,
~9% relative bucket width): an observation lands in the bucket whose
upper edge is the smallest power of the base at or above it, and
quantiles are reported at the geometric midpoint of the selected
bucket (clamped into the exact observed ``[min, max]``), bounding the
relative quantile error at ``2**(1/16) - 1`` ≈ 4.4% — tight enough
for p50/p90/p99 latency tracking at a few hundred sparse buckets.

:class:`ServiceCounters` — the serve layer's monotonic lifecycle
counters — lives here too (re-exported from :mod:`repro.core.metrics`
for compatibility).  It is a plain lock-guarded class, not a
dataclass: multi-field transitions go through one atomic
:meth:`~ServiceCounters.add` call and ``to_dict()`` snapshots every
field under the lock, so the ``accepted == completed + failed +
cancelled`` invariant can never tear mid-read no matter how many
threads are settling jobs.
"""

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Histogram bucket growth factor: buckets per octave = 8.
_BUCKETS_PER_OCTAVE = 8
_BASE = 2.0 ** (1.0 / _BUCKETS_PER_OCTAVE)
_LN_BASE = math.log(_BASE)

#: The quantiles every histogram snapshot reports.
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)


def bucket_index(value: float) -> int:
    """Index of the log-scale bucket holding ``value`` (> 0).

    Bucket ``i`` covers ``(_BASE**(i-1), _BASE**i]``; the epsilon keeps
    exact powers of the base from being pushed one bucket up by float
    noise.
    """
    return math.ceil(math.log(value) / _LN_BASE - 1e-9)


def bucket_edges(index: int) -> Tuple[float, float]:
    """``(lower, upper]`` edges of bucket ``index``."""
    return (_BASE ** (index - 1), _BASE ** index)


class Counter:
    """A monotonic counter.

    Concurrency:
        guarded-by _lock: _value
        unguarded-ok: name
    """

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _snapshot_locked(self) -> int:
        """Caller must hold `_lock`."""
        return self._value


class Gauge:
    """A settable point-in-time value.

    Concurrency:
        guarded-by _lock: _value
        unguarded-ok: name
    """

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _snapshot_locked(self) -> float:
        """Caller must hold `_lock`."""
        return self._value


class Histogram:
    """A streaming histogram over positive values (log-scale buckets).

    Non-positive observations are legal (a zero-duration span) and are
    counted in a dedicated zero bucket that sorts below every real one.

    Concurrency:
        guarded-by _lock: _counts, _zeros, _count, _sum, _min, _max
        unguarded-ok: name
    """

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self._lock = lock
        self._counts: Dict[int, int] = {}
        self._zeros = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if value <= 0.0:
                self._zeros += 1
            else:
                index = bucket_index(value)
                self._counts[index] = self._counts.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) of everything observed."""
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        """Caller must hold `_lock`."""
        if not self._count:
            return 0.0
        threshold = q * self._count
        running = self._zeros
        if running >= threshold:
            return max(0.0, self._min or 0.0)
        for index in sorted(self._counts):
            running += self._counts[index]
            if running >= threshold:
                # Geometric midpoint of the bucket, clamped into the
                # exact observed range.
                estimate = _BASE ** (index - 0.5)
                return min(max(estimate, self._min or estimate),
                           self._max or estimate)
        return self._max if self._max is not None else 0.0

    def _snapshot_locked(self) -> Dict[str, float]:
        """Caller must hold `_lock`."""
        snapshot: Dict[str, float] = {
            "count": self._count,
            "sum": round(self._sum, 9),
            "min": self._min if self._min is not None else 0.0,
            "max": self._max if self._max is not None else 0.0,
        }
        for q in SNAPSHOT_QUANTILES:
            snapshot[f"p{int(q * 100)}"] = round(
                self._quantile_locked(q), 9)
        return snapshot


class MetricsRegistry:
    """Get-or-create metric factory with consistent whole-set snapshots.

    Every metric created by a registry shares the registry's lock, so
    :meth:`snapshot` sees all of them at one instant — no per-metric
    lock juggling, no torn multi-counter invariants.  The lock is
    never held across anything blocking (pure dict/arithmetic work).

    Concurrency:
        guarded-by _lock: _counters, _gauges, _histograms
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = Counter(name, self._lock)
                self._counters[name] = metric
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = Gauge(name, self._lock)
                self._gauges[name] = metric
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = Histogram(name, self._lock)
                self._histograms[name] = metric
            return metric

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every metric, read under one lock acquisition."""
        with self._lock:
            return {
                "counters": {name: metric._snapshot_locked()
                             for name, metric
                             in sorted(self._counters.items())},
                "gauges": {name: metric._snapshot_locked()
                           for name, metric
                           in sorted(self._gauges.items())},
                "histograms": {name: metric._snapshot_locked()
                               for name, metric
                               in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        """Drop every metric (tests; a fresh daemon wants fresh zeros)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide default registry (serve daemon, campaign engine,
#: chaos controller all publish here).
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


#: ServiceCounters field names, in presentation order.
SERVICE_COUNTER_FIELDS = (
    "accepted", "completed", "failed", "cancelled", "rejected",
    "cache_hits", "coalesced", "timeouts",
)


class ServiceCounters:
    """Monotonic served-job counters (the serve layer's ``/metrics``).

    Invariant: every accepted job ends in exactly one of ``completed``
    / ``failed`` / ``cancelled``, so once a server drains,
    ``accepted == completed + failed + cancelled``.  ``rejected``
    counts admission-control refusals (never accepted), ``cache_hits``
    the accepted jobs answered from the result cache without pool work,
    and ``coalesced`` the accepted jobs attached to an identical
    already-in-flight computation.

    All mutation goes through :meth:`add`, which applies *every* given
    delta under one lock acquisition — a settle that bumps several
    fields is atomic against concurrent :meth:`to_dict` readers, so a
    drained server's invariant can never be observed torn.

    Picklable (the lock is dropped and re-created), though nothing on
    the wire path ships one today.

    Concurrency:
        guarded-by _lock: _counts
    """

    def __init__(self, **initial: int) -> None:
        unknown = sorted(set(initial) - set(SERVICE_COUNTER_FIELDS))
        if unknown:
            raise TypeError(f"unknown counter field(s): "
                            f"{', '.join(unknown)}")
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {
            name: int(initial.get(name, 0))
            for name in SERVICE_COUNTER_FIELDS}

    def add(self, **deltas: int) -> None:
        """Apply all given non-negative deltas in one atomic step."""
        unknown = sorted(set(deltas) - set(SERVICE_COUNTER_FIELDS))
        if unknown:
            raise TypeError(f"unknown counter field(s): "
                            f"{', '.join(unknown)}")
        with self._lock:
            for name, delta in deltas.items():
                if delta < 0:
                    raise ValueError(f"counter {name!r} cannot decrease")
                self._counts[name] += delta

    def to_dict(self) -> Dict[str, int]:
        """One consistent snapshot of every field (single lock hold)."""
        with self._lock:
            return dict(self._counts)

    def consistent(self) -> bool:
        """Does the lifecycle invariant hold right now (drained state)?"""
        with self._lock:
            return self._counts["accepted"] == (
                self._counts["completed"] + self._counts["failed"]
                + self._counts["cancelled"])

    def __getstate__(self) -> Dict[str, int]:
        return self.to_dict()

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.__init__(**state)

    def __repr__(self) -> str:
        counts = self.to_dict()
        inner = ", ".join(f"{name}={counts[name]}"
                          for name in SERVICE_COUNTER_FIELDS)
        return f"ServiceCounters({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceCounters):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def _get(self, name: str) -> int:
        with self._lock:
            return self._counts[name]

    # Read-only field accessors (writes go through :meth:`add` only, so
    # a stray `counters.accepted += 1` fails loudly instead of racing).
    @property
    def accepted(self) -> int:
        return self._get("accepted")

    @property
    def completed(self) -> int:
        return self._get("completed")

    @property
    def failed(self) -> int:
        return self._get("failed")

    @property
    def cancelled(self) -> int:
        return self._get("cancelled")

    @property
    def rejected(self) -> int:
        return self._get("rejected")

    @property
    def cache_hits(self) -> int:
        return self._get("cache_hits")

    @property
    def coalesced(self) -> int:
        return self._get("coalesced")

    @property
    def timeouts(self) -> int:
        return self._get("timeouts")


def quantile_oracle(values: Iterable[float], q: float) -> float:
    """Exact nearest-rank quantile of a finite sample (test oracle)."""
    ordered: List[float] = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]
