"""``python -m repro obs`` — observability verbs.

Examples::

    # Roll up a span log per trace (text or JSON)
    python -m repro obs report --spans runs/serve/spans.jsonl

    # The last N span records, parsed, newest last
    python -m repro obs tail --spans runs/serve/spans.jsonl -n 20

    # Full export in the unified JSON envelope; --normalize emits the
    # deterministic form the chaos soak compares (timing stripped,
    # infra spans dropped, retries deduplicated)
    python -m repro obs export --spans spans.jsonl --normalize

    # Per-stage wall-clock profile of one simulated run
    python -m repro obs profile --kind srt --benchmark gcc \\
        --instructions 2000 --warmup 500

    # The CI perf gate: normalized current vs committed baseline
    python -m repro obs bench-check BENCH_ci.json \\
        --baseline benchmarks/baseline.json --tolerance 0.25
"""

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis.report import envelope
from repro.obs import bench, trace


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro obs",
        description="Observability: span logs, stage profiles, and the "
                    "benchmark-trajectory gate")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    report = sub.add_parser("report", help="per-trace rollup of a span "
                                           "log")
    report.add_argument("--spans", required=True,
                        help="span JSONL file (e.g. <workdir>/spans.jsonl)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text")
    report.add_argument("--limit", type=int, default=20,
                        help="detail at most N traces (all are counted)")

    tail = sub.add_parser("tail", help="last N span records, parsed")
    tail.add_argument("--spans", required=True)
    tail.add_argument("-n", "--lines", type=int, default=20)

    export = sub.add_parser("export", help="span log as one JSON "
                                           "envelope")
    export.add_argument("--spans", required=True)
    export.add_argument("--normalize", action="store_true",
                        help="deterministic form: timing fields "
                             "stripped, infra spans dropped, retries "
                             "deduplicated, sorted")

    profile = sub.add_parser("profile", help="per-stage wall-clock "
                                             "profile of one run")
    profile.add_argument("--kind", default="srt",
                         help="machine kind (base/srt/lockstep/crt)")
    profile.add_argument("--benchmark", default="gcc")
    profile.add_argument("--instructions", type=int, default=2000)
    profile.add_argument("--warmup", type=int, default=500)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--format", choices=("text", "json"),
                         default="text")

    gate = sub.add_parser("bench-check", help="fail on normalized "
                                              "benchmark regression")
    gate.add_argument("current", help="freshly recorded trajectory file "
                                      "(REPRO_BENCH_OUT output)")
    gate.add_argument("--baseline", default="benchmarks/baseline.json")
    gate.add_argument("--tolerance", type=float,
                      default=bench.DEFAULT_TOLERANCE,
                      help="allowed fractional regression "
                           "(default 0.25)")
    return parser


def cmd_report(args: argparse.Namespace) -> int:
    summary = trace.trace_summary(args.spans, limit=args.limit)
    if args.format == "json":
        _print_json(envelope("obs", True, [], spans=summary))
        return 0
    print(f"span log {summary['path']}: {summary['total_spans']} "
          f"span(s) across {summary['trace_count']} trace(s)")
    for trace_id, entry in summary["traces"].items():
        print(f"  trace {trace_id}: {entry['spans']} span(s), "
              f"{entry['errors']} error(s)")
        for name, stats in sorted(entry["by_name"].items()):
            print(f"    {name:<24s} x{stats['count']:<5d} "
                  f"{stats['total_s'] * 1e3:9.2f} ms total")
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    records = trace.read_spans(args.spans)
    for record in records[-max(0, args.lines):]:
        print(json.dumps(record, sort_keys=True))
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    if args.normalize:
        lines = trace.normalize_spans(trace.read_spans(args.spans))
        _print_json(envelope("obs", True, [],
                             normalized=[json.loads(line)
                                         for line in lines]))
        return 0
    _print_json(envelope("obs", True, [],
                         spans=trace.read_spans(args.spans)))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.config import MachineConfig
    from repro.core.machine import make_machine
    from repro.isa.generator import generate_benchmark
    from repro.isa.profiles import split_workload
    from repro.obs.profile import StageProfiler

    name, workload_seed = split_workload(args.benchmark)
    program = generate_benchmark(name, seed=workload_seed + args.seed)
    machine = make_machine(args.kind, MachineConfig(), [program])
    profiler = StageProfiler()
    result = profiler.run(machine, max_instructions=args.instructions,
                          warmup=args.warmup)
    if args.format == "json":
        _print_json(envelope("obs", True, [],
                             profile=profiler.to_dict(),
                             run={"kind": result.kind,
                                  "cycles": result.cycles,
                                  "termination":
                                      result.termination.value}))
        return 0
    print(f"{args.kind} on {args.benchmark}: {result.cycles} cycles, "
          f"termination={result.termination.value}")
    print(profiler.report())
    return 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    findings = bench.check_files(args.current, args.baseline,
                                 tolerance=args.tolerance)
    if not findings:
        print(f"bench-check: OK — every metric within "
              f"{args.tolerance * 100:.0f}% of "
              f"{args.baseline} (normalized)")
        return 0
    for finding in findings:
        if "error" in finding:
            print(f"bench-check: {finding['metric']}: "
                  f"{finding['error']}", file=sys.stderr)
            continue
        direction = ("slower" if finding["kind"] == "wall"
                     else "of baseline throughput")
        print(f"bench-check: REGRESSION {finding['metric']}: "
              f"normalized {finding['current']} vs baseline "
              f"{finding['baseline']} "
              f"(ratio {finding['ratio']} {direction}, tolerance "
              f"{finding['tolerance'] * 100:.0f}%)", file=sys.stderr)
    print(f"bench-check: FAIL ({len(findings)} finding(s)); refresh "
          f"with REPRO_BENCH_OUT={args.baseline} python -m pytest "
          f"benchmarks/... -q -s if this slowdown is intended",
          file=sys.stderr)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"report": cmd_report, "tail": cmd_tail,
                "export": cmd_export, "profile": cmd_profile,
                "bench-check": cmd_bench_check}
    return handlers[args.subcommand](args)


if __name__ == "__main__":
    sys.exit(main())
