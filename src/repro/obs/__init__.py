"""repro.obs — the observability layer (metrics, traces, profiles).

Three stdlib-only tools shared by the serve daemon, the campaign
engine, the chaos soak, and the recovery stack:

- :mod:`repro.obs.metrics` — a typed, thread-safe registry of
  counters, gauges, and streaming log-bucket histograms (p50/p90/p99),
  plus the :class:`~repro.obs.metrics.ServiceCounters` group behind
  ``/metrics`` (re-exported from :mod:`repro.core.metrics` for
  compatibility);
- :mod:`repro.obs.trace` — deterministic span tracing with trace-ids
  that survive the serve API → scheduler → executor bridge → campaign
  worker *process* boundary (env + pickle carry, the same mechanism as
  ``REPRO_CHAOS_PLAN``), appended to a torn-tail-tolerant JSONL log;
- :mod:`repro.obs.profile` — an opt-in per-stage profiler that drives
  the simulator run loop externally (fetch/queue/verify/commit) so the
  disarmed hot loop pays nothing;
- :mod:`repro.obs.bench` — the benchmark trajectory recorder and the
  CI regression gate behind ``repro obs bench-check``.

Surfacing: ``/metrics`` (histograms + span summaries) and the
``python -m repro obs report|tail|export|profile|bench-check`` CLI.
See ``docs/OBSERVABILITY.md`` for the span catalogue and the metric
naming scheme.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, ServiceCounters,
                               registry)
from repro.obs.trace import (adopt, arm_tracing, carry, disarm_tracing,
                             normalize_span_log, read_spans, span,
                             trace_summary, traced, tracer)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "ServiceCounters", "registry",
    "adopt", "arm_tracing", "carry", "disarm_tracing",
    "normalize_span_log", "read_spans", "span", "trace_summary",
    "traced", "tracer",
]
