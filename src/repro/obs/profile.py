"""Opt-in per-stage wall-clock profiling of the simulator hot loop.

The determinism linter (S102) bans wall-clock reads inside the cycle
layers, and the run loop is the hottest code in the repo — so the
profiler *drives the loop from outside* instead of instrumenting it:
:meth:`StageProfiler.run` replays ``Machine.step`` / ``Core.tick``
phase-by-phase with a ``perf_counter`` fence between stage groups,
exactly the external-driver pattern of
:class:`repro.harness.tracing.OccupancySampler`.  Disarmed overhead is
therefore literally zero — the plain ``machine.run`` path is untouched
(``benchmarks/test_campaign_throughput.py`` holds the whole disarmed
obs surface under 2% of per-task cost).

Stage mapping (the paper's pipeline vocabulary):

========  ==========================================================
fetch     ``_deliver_fetch`` + ``ibox.fetch`` (instruction supply)
queue     event writeback, ``qbox.issue``, queue insert, rename,
          and the fault injector (in-flight bookkeeping)
verify    ``_post_tick`` (RMT output comparison / LVQ / slack) +
          recovery tick + watchdog observation
commit    ``_retire`` + ``mbox.drain_stores`` + hierarchy tick
========  ==========================================================

The phase *order* inside a profiled cycle is byte-for-byte the order
of ``Machine.step`` and ``Core.tick`` — only timing fences are added
— so a profiled run returns the identical :class:`RunResult` as a
plain one (pinned by ``tests/test_obs_profile.py``; update the table
below together with those two methods).
"""

import time
from typing import Dict, List, Optional, Tuple

from repro.core.metrics import RunResult

#: Stage names, in presentation order.
STAGES = ("fetch", "queue", "verify", "commit")


class StageProfiler:
    """Drives a machine's run loop, attributing time to pipeline stages.

    Usage::

        profiler = StageProfiler()
        result = profiler.run(machine, max_instructions=2000, warmup=500)
        print(profiler.report())

    ``seconds`` maps each stage to attributed wall time; ``cycles`` is
    the number of profiled cycles; ``overhead_s`` is loop time not
    attributed to any stage (the fences themselves, loop control).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {stage: 0.0 for stage in STAGES}
        self.cycles = 0
        self.total_s = 0.0

    # -- driving -----------------------------------------------------------
    def run(self, machine, max_instructions: int = 10_000,
            max_cycles: Optional[int] = None,
            warmup: int = 0) -> RunResult:
        """``machine.run`` with per-stage timing; identical result."""
        if warmup:
            machine.warm(warmup)
        if max_cycles is None:
            max_cycles = max_instructions * 60 + 20_000
        machine._arm(max_instructions)
        loop_start = time.perf_counter()
        while machine.now < max_cycles:
            if machine._halted():
                break
            self._profiled_step(machine)
        self.total_s += time.perf_counter() - loop_start
        # The post-halt drain inside _finish runs unprofiled (it is the
        # tail grace window, not steady-state behaviour).
        return machine._finish(max_instructions, max_cycles)

    def _profiled_step(self, machine) -> None:
        """``Machine.step`` with stage fences, preserving phase order."""
        seconds = self.seconds
        clock = time.perf_counter
        now = machine.now
        t0 = clock()
        if machine.injector is not None:
            machine.injector.tick(now)
        t1 = clock()
        seconds["queue"] += t1 - t0
        for core in machine.cores:
            # Core.tick, inlined with fences between phase groups.
            core.now = now
            t0 = clock()
            core._process_events(now)
            t1 = clock()
            core._retire(now)
            core.mbox.drain_stores(now)
            t2 = clock()
            core.qbox.issue(now)
            core._insert_queue(now)
            core._rename(now)
            t3 = clock()
            core._deliver_fetch(now)
            core.ibox.fetch(now)
            t4 = clock()
            core.stats.cycles += 1
            seconds["queue"] += (t1 - t0) + (t3 - t2)
            seconds["commit"] += t2 - t1
            seconds["fetch"] += t4 - t3
        t0 = clock()
        machine._post_tick()
        if machine.recovery is not None:
            machine.recovery.tick(now)
        t1 = clock()
        seconds["verify"] += t1 - t0
        for hierarchy in machine.hierarchies:
            hierarchy.tick(now)
        t2 = clock()
        seconds["commit"] += t2 - t1
        machine.now = now + 1
        if machine.watchdog is not None:
            machine.watchdog.observe(machine.now)
        seconds["verify"] += clock() - t2
        self.cycles += 1

    # -- reporting ---------------------------------------------------------
    @property
    def attributed_s(self) -> float:
        return sum(self.seconds.values())

    @property
    def overhead_s(self) -> float:
        """Loop time not attributed to a stage (fences, loop control)."""
        return max(0.0, self.total_s - self.attributed_s)

    def shares(self) -> Dict[str, float]:
        """Per-stage fraction of attributed time (sums to ~1.0)."""
        total = self.attributed_s
        if not total:
            return {stage: 0.0 for stage in STAGES}
        return {stage: self.seconds[stage] / total for stage in STAGES}

    def rows(self) -> List[Tuple[str, float, float, float]]:
        """(stage, seconds, share, ns/cycle) rows, presentation order."""
        shares = self.shares()
        per_cycle = self.cycles or 1
        return [(stage, self.seconds[stage], shares[stage],
                 self.seconds[stage] / per_cycle * 1e9)
                for stage in STAGES]

    def report(self) -> str:
        lines = [f"stage profile: {self.cycles} cycles, "
                 f"{self.attributed_s * 1e3:.1f} ms attributed "
                 f"(+{self.overhead_s * 1e3:.1f} ms loop overhead)"]
        for stage, seconds, share, ns in self.rows():
            lines.append(f"  {stage:<7s} {seconds * 1e3:9.2f} ms  "
                         f"{share * 100:5.1f}%  {ns:8.0f} ns/cycle")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "cycles": self.cycles,
            "seconds": {stage: round(self.seconds[stage], 9)
                        for stage in STAGES},
            "shares": {stage: round(share, 6)
                       for stage, share in self.shares().items()},
            "overhead_s": round(self.overhead_s, 9),
        }
