"""Benchmark trajectory recording and the CI perf-regression gate.

The repo's benchmarks print throughput figures but, before this layer,
nothing *recorded* them — the bench trajectory across PRs was empty.
Now each benchmark calls :func:`record` with its headline number; when
``REPRO_BENCH_OUT`` names a file the observation is merged into it
(and silently dropped otherwise, so local ``pytest benchmarks/`` runs
pay nothing).

Machine-agnostic normalization: raw ops/sec on a fast box and a slow
CI runner are incomparable, so every output file carries a *host
calibration score* — the throughput of a fixed pure-Python workload
(:func:`calibrate`) measured once per file — and each metric stores
``normalized = raw / calibration`` (rates) or ``raw * calibration``
(wall times).  Two hosts differing only in CPU speed then produce
comparable normalized values, which is what
``benchmarks/baseline.json`` commits and what ``repro obs
bench-check`` compares with a tolerance band (default 25%).

Refresh the committed baseline in one line::

    REPRO_BENCH_OUT=benchmarks/baseline.json python -m pytest \\
        benchmarks/test_campaign_throughput.py \\
        benchmarks/test_flow_analysis.py \\
        benchmarks/test_verify_explore.py -q -s

The gate's teeth are proven the same way the verify mutation gates
are: ``tests/test_obs_bench.py`` seeds a 2x slowdown into a recorded
file and asserts :func:`compare` (and the CLI exit code) flags it.
"""

import json
import os
import time
from typing import Dict, List, Optional

#: Environment variable naming the output file; unset = no recording.
ENV_OUT = "REPRO_BENCH_OUT"

#: Default regression tolerance: a metric whose normalized value is
#: more than this fraction worse than baseline fails the gate.
DEFAULT_TOLERANCE = 0.25

#: Calibration workload size (dict/arithmetic churn, pure Python).
_CAL_OPS = 50_000
_CAL_REPEATS = 3

#: File-format version (bumped when the JSON shape changes).
BENCH_SCHEMA = 1


def _calibration_round() -> float:
    """One timed round of the fixed workload; returns ops/sec."""
    start = time.perf_counter()
    table: Dict[int, int] = {}
    acc = 0
    for i in range(_CAL_OPS):
        acc = (acc * 31 + i) & 0xFFFFFFFF
        table[acc & 1023] = i
        if acc & 7 == 0:
            acc ^= table.get((acc >> 3) & 1023, 0)
    elapsed = time.perf_counter() - start
    # `acc` anchors the loop against dead-code elimination by smarter
    # interpreters; fold it into nothing.
    return _CAL_OPS / elapsed if elapsed > 0 else float(_CAL_OPS)


def calibrate() -> float:
    """Host speed score: best-of-N ops/sec of a fixed pure-Python mix.

    Best-of (not mean) because scheduling noise only ever makes a round
    slower; the fastest round is the closest estimate of what the host
    can actually do.
    """
    return max(_calibration_round() for _ in range(_CAL_REPEATS))


def _load(path) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as source:
            data = json.load(source)
    except (FileNotFoundError, json.JSONDecodeError):
        return {}
    return data if isinstance(data, dict) else {}


def record(name: str, ops_per_s: Optional[float] = None,
           wall_s: Optional[float] = None,
           meta: Optional[Dict[str, object]] = None) -> Optional[str]:
    """Record one benchmark observation into ``$REPRO_BENCH_OUT``.

    Exactly one of ``ops_per_s`` (a rate: higher is better) or
    ``wall_s`` (a wall time: lower is better) must be given.  A no-op
    returning ``None`` when the environment variable is unset.  The
    file is read-modify-written whole (benchmarks run sequentially in
    one pytest process; this is a trajectory file, not a database).
    """
    if (ops_per_s is None) == (wall_s is None):
        raise ValueError("record() needs exactly one of ops_per_s/wall_s")
    out = os.environ.get(ENV_OUT)
    if not out:
        return None
    data = _load(out)
    if "calibration" not in data:
        data = {"version": BENCH_SCHEMA, "calibration": calibrate(),
                "metrics": {}}
    calibration = float(data["calibration"])
    if ops_per_s is not None:
        kind, raw = "rate", float(ops_per_s)
        normalized = raw / calibration if calibration else raw
    else:
        kind, raw = "wall", float(wall_s)
        normalized = raw * calibration
    entry: Dict[str, object] = {
        "kind": kind, "raw": round(raw, 6),
        "normalized": round(normalized, 9),
    }
    if meta:
        entry["meta"] = meta
    data.setdefault("metrics", {})[name] = entry
    with open(out, "w", encoding="utf-8") as sink:
        json.dump(data, sink, indent=2, sort_keys=True)
        sink.write("\n")
    return out


def compare(current: Dict[str, object], baseline: Dict[str, object],
            tolerance: float = DEFAULT_TOLERANCE) -> List[Dict[str, object]]:
    """Regressions of ``current`` against ``baseline``.

    Every baseline metric must be present in ``current`` (a silently
    vanished benchmark is itself a regression) and its normalized
    value must be within the tolerance band: rates may not drop more
    than ``tolerance`` below baseline, wall times may not rise more
    than ``tolerance`` above it.  Improvements never fail.
    """
    current_metrics = current.get("metrics") or {}
    findings: List[Dict[str, object]] = []
    for name, base in sorted((baseline.get("metrics") or {}).items()):
        entry = current_metrics.get(name)
        if entry is None:
            findings.append({"metric": name, "kind": base.get("kind"),
                             "error": "missing from current run"})
            continue
        kind = base.get("kind", "rate")
        base_value = float(base.get("normalized", 0.0))
        value = float(entry.get("normalized", 0.0))
        if not base_value:
            continue
        if kind == "rate":
            ratio = value / base_value
            regressed = ratio < 1.0 - tolerance
        else:
            ratio = value / base_value
            regressed = ratio > 1.0 + tolerance
        if regressed:
            findings.append({
                "metric": name, "kind": kind,
                "baseline": round(base_value, 6),
                "current": round(value, 6),
                "ratio": round(ratio, 4),
                "tolerance": tolerance,
            })
    return findings


def check_files(current_path, baseline_path,
                tolerance: float = DEFAULT_TOLERANCE
                ) -> List[Dict[str, object]]:
    """:func:`compare` over two trajectory files (the CLI's core)."""
    current = _load(current_path)
    baseline = _load(baseline_path)
    if not baseline.get("metrics"):
        return [{"metric": "*", "error": f"no baseline metrics in "
                                         f"{baseline_path}"}]
    if not current.get("metrics"):
        return [{"metric": "*", "error": f"no recorded metrics in "
                                         f"{current_path}"}]
    return compare(current, baseline, tolerance)
