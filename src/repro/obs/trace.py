"""Deterministic span tracing across threads and process pools.

Design constraints, in order:

1. **Disarmed is free.**  ``span(...)`` with no tracer armed returns a
   shared no-op context manager — one global load and a ``None`` test,
   the same budget as a disarmed ``chaos_point`` (held under 2% of
   per-task campaign cost by ``benchmarks/test_campaign_throughput``).
2. **Span identity is content-derived, never random.**  A keyed span's
   id is a hash of ``(trace_id, name, key)`` — the key IS the identity,
   the parent is an attribute — and a keyless span's id hashes
   ``(trace_id, parent_id, name, sibling-ordinal)``.  The same logical
   work therefore gets the same id in every run, at every ``--jobs``
   level, and on every chaos retry *even when the retry lands in a
   differently composed chunk* — which is what lets the soak gate
   compare span logs across clean and fault-ridden runs.
3. **Propagation rides the existing carriers.**  Process-wide arming
   exports ``REPRO_TRACE`` (path + trace id) exactly like
   ``REPRO_CHAOS_PLAN``: forked pool workers inherit armed module
   state, spawned ones lazily re-arm from the environment.  The
   *parent linkage* travels inside pickled chunk payloads (a
   ``{"trace_id", "parent"}`` dict from :func:`carry`, adopted by the
   worker with :func:`adopt`), so child spans nest under the
   submitting job's root span across the process boundary.
4. **The log is append-only JSONL with torn-tail-tolerant reads**, the
   campaign store's discipline: each record is one ``json.dumps``
   line written by a single ``write`` on an ``O_APPEND`` descriptor;
   a reader skips any line that does not parse (a worker killed
   mid-write leaves at most one torn line, which is forensic noise,
   not corruption).

Span records are emitted at *exit*, carrying ``ts``/``dur_s``/``pid``
(wall-clock, nondeterministic) alongside the deterministic identity
fields.  :func:`normalize_span_log` strips :data:`TIMING_FIELDS`,
drops ``infra``-tagged spans (chunk-grouping spans whose shape
legitimately changes when chaos re-chunks work), deduplicates retry
re-emissions, and sorts — the canonical form the chaos soak asserts
byte-identical between clean and fault-injected runs.
"""

import hashlib
import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import registry

#: Environment variable carrying the armed tracer (path + trace id)
#: into child processes, the ``REPRO_CHAOS_PLAN`` mechanism.
ENV_TRACE = "REPRO_TRACE"

#: Record fields that are wall-clock/topology noise, stripped by
#: :func:`normalize_span_log` (``attempt`` counts chaos retries).
TIMING_FIELDS = ("ts", "dur_s", "pid", "attempt")

#: Hex digits of a span/trace id.
_ID_LEN = 12


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_ID_LEN]


class Tracer:
    """One armed span sink: an append-only JSONL file.

    ``emit`` opens, appends one line, and closes — no descriptor is
    held, so any thread or process can emit concurrently (``O_APPEND``
    keeps whole lines intact) and a crashed worker leaks nothing.  An
    emit that fails (disk full) is *dropped*, counted in the
    ``obs.trace.dropped`` registry counter: observability must never
    change the outcome of the work it observes.

    Concurrency:
        unguarded-ok: path, trace_id
    """

    def __init__(self, path: str, trace_id: str = "t0") -> None:
        self.path = str(path)
        self.trace_id = str(trace_id)

    def emit(self, record: Dict[str, object]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        try:
            with open(self.path, "a", encoding="utf-8") as sink:
                sink.write(line)
        except OSError:
            registry().counter("obs.trace.dropped").inc()


# -- ambient span state (per thread) ---------------------------------------

class _Ambient(threading.local):
    def __init__(self) -> None:
        self.span: Optional["Span"] = None


_AMBIENT = _Ambient()

_TRACER: Optional[Tracer] = None
#: True only when this process was handed a tracer through the
#: environment (spawned pool worker) and has not loaded it yet.
_ENV_PENDING = ENV_TRACE in os.environ


def _active_tracer() -> Optional[Tracer]:
    tracer_ = _TRACER
    if tracer_ is None and _ENV_PENDING:
        tracer_ = _arm_from_env()
    return tracer_


def tracer() -> Optional[Tracer]:
    """The armed tracer, or None."""
    return _active_tracer()


def arm_tracing(path, trace_id: str = "t0") -> Tracer:
    """Arm span tracing process-wide (and for future child processes)."""
    global _TRACER, _ENV_PENDING
    _TRACER = Tracer(path, trace_id)
    _ENV_PENDING = False
    os.environ[ENV_TRACE] = json.dumps(
        {"path": _TRACER.path, "trace_id": _TRACER.trace_id},
        sort_keys=True)
    return _TRACER


def disarm_tracing() -> None:
    """Disarm tracing here and stop exporting it to children."""
    global _TRACER, _ENV_PENDING
    _TRACER = None
    _ENV_PENDING = False
    _AMBIENT.span = None
    os.environ.pop(ENV_TRACE, None)


def _arm_from_env() -> Optional[Tracer]:
    global _TRACER, _ENV_PENDING
    _ENV_PENDING = False
    text = os.environ.get(ENV_TRACE)
    if not text:
        return None
    try:
        config = json.loads(text)
    except json.JSONDecodeError:
        return None
    _TRACER = Tracer(config["path"], config.get("trace_id", "t0"))
    return _TRACER


class traced:
    """``with traced(path): ...`` — arm for a scope, always disarm."""

    def __init__(self, path, trace_id: str = "t0") -> None:
        self._path = path
        self._trace_id = trace_id

    def __enter__(self) -> Tracer:
        return arm_tracing(self._path, self._trace_id)

    def __exit__(self, *exc_info) -> None:
        disarm_tracing()


# -- spans ------------------------------------------------------------------

class Span:
    """One open span (the live object; the record is written at exit)."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "key",
                 "attempt", "infra", "attrs", "children", "_t0", "_ts")

    def __init__(self, trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str,
                 key: Optional[str], attempt: int, infra: bool,
                 attrs: Dict[str, object]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.key = key
        self.attempt = attempt
        self.infra = infra
        self.attrs = attrs
        self.children = 0  # keyless-child ordinal counter
        self._t0 = time.perf_counter()
        self._ts = time.time()

    def record(self, ok: bool) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "key": self.key,
            "ok": ok,
            "ts": round(self._ts, 6),
            "dur_s": round(time.perf_counter() - self._t0, 9),
            "pid": os.getpid(),
        }
        if self.attempt:
            payload["attempt"] = self.attempt
        if self.infra:
            payload["infra"] = True
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


class _RemoteParent:
    """Ambient stand-in for a span living in another process."""

    __slots__ = ("trace_id", "span_id", "children")

    def __init__(self, trace_id: str, span_id: Optional[str]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.children = 0


class _NoopSpan:
    """Shared do-nothing context manager for the disarmed fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP = _NoopSpan()


class _SpanContext:
    """The armed ``with span(...)`` context manager."""

    __slots__ = ("_tracer", "_name", "_key", "_trace_id", "_attempt",
                 "_infra", "_attrs", "_span", "_prev")

    def __init__(self, tracer_: Tracer, name: str, key: Optional[str],
                 trace_id: Optional[str], attempt: int, infra: bool,
                 attrs: Dict[str, object]) -> None:
        self._tracer = tracer_
        self._name = name
        self._key = key
        self._trace_id = trace_id
        self._attempt = attempt
        self._infra = infra
        self._attrs = attrs
        self._span: Optional[Span] = None
        self._prev = None

    def __enter__(self) -> Span:
        parent = None if self._trace_id is not None else _AMBIENT.span
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._trace_id or self._tracer.trace_id
            parent_id = None
        if self._key is not None:
            # Keyed spans are content-addressed by (trace, name, key)
            # alone — the parent is an attribute, not identity.  A task
            # re-executed inside a differently composed retry chunk must
            # get the SAME span id, so the normalized log dedupes it.
            identity = f"{trace_id}||{self._name}|k:{self._key}"
        else:
            # Keyless spans take the parent's child ordinal: stable as
            # long as keyless siblings open in a deterministic order
            # (single-threaded parents; cross-process spans carry keys).
            index = parent.children if parent is not None else 0
            identity = (f"{trace_id}|{parent_id or ''}|{self._name}"
                        f"|i:{index}")
        if parent is not None:
            parent.children += 1
        span_id = _digest(identity)
        self._span = Span(trace_id, span_id, parent_id, self._name,
                          self._key, self._attempt, self._infra,
                          self._attrs)
        self._prev = _AMBIENT.span
        _AMBIENT.span = self._span
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        _AMBIENT.span = self._prev
        if self._span is not None:
            self._tracer.emit(self._span.record(ok=exc_type is None))
        return False


def span(name: str, key: Optional[str] = None,
         trace_id: Optional[str] = None, attempt: int = 0,
         infra: bool = False, **attrs: object):
    """Open a span; a cheap no-op unless tracing is armed.

    ``key`` makes the span id content-derived (required for spans that
    open in worker processes or retry); ``trace_id`` forces a new root
    span regardless of ambient context (the serve executor bridge);
    ``attempt`` marks chaos-retry re-executions (stripped from the
    normalized log); ``infra=True`` tags execution-shape spans (chunk
    grouping) that the determinism gate ignores; remaining ``attrs``
    must be deterministic JSON-able values.
    """
    tracer_ = _active_tracer()
    if tracer_ is None:
        return _NOOP
    return _SpanContext(tracer_, name, key, trace_id, int(attempt),
                        bool(infra), attrs)


def current_span() -> Optional[Span]:
    """This thread's innermost open span, if tracing is armed."""
    if _active_tracer() is None:
        return None
    return _AMBIENT.span


def carry() -> Optional[Dict[str, Optional[str]]]:
    """Pickle-able linkage for work shipped to another process/thread.

    Returns ``None`` when disarmed, so payload builders can attach it
    unconditionally.
    """
    tracer_ = _active_tracer()
    if tracer_ is None:
        return None
    current = _AMBIENT.span
    return {
        "trace_id": (current.trace_id if current is not None
                     else tracer_.trace_id),
        "parent": current.span_id if current is not None else None,
    }


class adopt:
    """``with adopt(carry_dict): ...`` — parent spans under a carried
    linkage (the worker-process side of :func:`carry`).  A ``None``
    carry (or disarmed tracing) is a no-op, so call sites stay
    unconditional."""

    def __init__(self, carried: Optional[Dict[str, Optional[str]]]) -> None:
        self._carried = carried
        self._prev = None
        self._active = False

    def __enter__(self) -> None:
        if self._carried is None or _active_tracer() is None:
            return None
        self._prev = _AMBIENT.span
        _AMBIENT.span = _RemoteParent(
            str(self._carried.get("trace_id") or "t0"),
            self._carried.get("parent"))
        self._active = True
        return None

    def __exit__(self, *exc_info) -> bool:
        if self._active:
            _AMBIENT.span = self._prev
            self._active = False
        return False


# -- reading ----------------------------------------------------------------

def read_spans(path) -> List[Dict[str, object]]:
    """Every parseable span record in ``path``, in file order.

    Torn-tail tolerant, like the campaign store: a line that does not
    parse (a worker killed mid-append) is skipped, never fatal.  A
    missing file reads as empty — a run that opened no spans.
    """
    try:
        with open(path, "rb") as source:
            raw = source.read()
    except FileNotFoundError:
        return []
    records: List[Dict[str, object]] = []
    for line in raw.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def normalize_spans(records: Iterable[Dict[str, object]]) -> List[str]:
    """Canonical deterministic form of a span set.

    Strips :data:`TIMING_FIELDS`, drops ``infra``-tagged spans (chunk
    grouping legitimately differs when chaos re-chunks work — the same
    reason ``results.jsonl`` stays byte-identical *because* it erases
    chunk structure), deduplicates retry re-emissions (same span id →
    same normalized line), and sorts.

    Dropping an infra span splices it out of the tree: its children are
    re-parented to the nearest surviving (non-infra) ancestor.  This is
    load-bearing for determinism — a task re-executed after a worker
    crash lands in a *differently composed* chunk, whose content-derived
    span id differs, but its nearest non-infra ancestor (the campaign
    root) is identical either way.
    """
    records = list(records)
    infra_parent = {str(record.get("span")): record.get("parent")
                    for record in records if record.get("infra")}
    lines = set()
    for record in records:
        if record.get("infra"):
            continue
        cleaned = {name: value for name, value in record.items()
                   if name not in TIMING_FIELDS}
        parent = cleaned.get("parent")
        hops = 0
        while parent in infra_parent and hops < len(infra_parent) + 1:
            parent = infra_parent[parent]
            hops += 1
        cleaned["parent"] = parent
        lines.add(json.dumps(cleaned, sort_keys=True,
                             separators=(",", ":")))
    return sorted(lines)


def normalize_span_log(path) -> str:
    """:func:`normalize_spans` over a span file, as one comparable blob."""
    return "\n".join(normalize_spans(read_spans(path)))


def trace_summary(path, limit: int = 20) -> Dict[str, object]:
    """Per-trace rollup of a span log (the ``/metrics`` spans section).

    ``limit`` keeps the scrape payload bounded: only the ``limit`` most
    recently finished traces are detailed (all are counted).
    """
    records = read_spans(path)
    traces: Dict[str, Dict[str, object]] = {}
    last_seen: Dict[str, float] = {}
    for record in records:
        trace_id = str(record.get("trace", "?"))
        entry = traces.setdefault(trace_id, {
            "spans": 0, "errors": 0, "by_name": {}})
        entry["spans"] += 1
        if not record.get("ok", True):
            entry["errors"] += 1
        name = str(record.get("name", "?"))
        by_name: Dict[str, Dict[str, float]] = entry["by_name"]
        stats = by_name.setdefault(name, {"count": 0, "total_s": 0.0})
        stats["count"] += 1
        stats["total_s"] = round(
            stats["total_s"] + float(record.get("dur_s") or 0.0), 9)
        ts = float(record.get("ts") or 0.0)
        if ts >= last_seen.get(trace_id, 0.0):
            last_seen[trace_id] = ts
    keep = sorted(last_seen, key=lambda t: (last_seen[t], t))[-limit:]
    return {
        "path": str(path),
        "total_spans": len(records),
        "traces": {trace_id: traces[trace_id] for trace_id in sorted(keep)},
        "trace_count": len(traces),
    }
