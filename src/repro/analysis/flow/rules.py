"""S6xx async-safety and S7xx resource-safety rule families.

Both families are *function summaries propagated over the call graph*:

- **S601** — a blocking call (file/socket I/O, ``time.sleep``, lock
  ``.acquire``, ``subprocess``) transitively reachable from an
  ``async def`` through plain call/await edges.  An executor hop
  (``run_in_executor`` / ``Executor.submit`` / ``Thread``) breaks the
  chain — that is the sanctioned way off the loop.  Findings land on
  the *frontier*: the async function whose own statement starts the
  blocking chain, with the chain spelled out in the message.
- **S602** — a call that builds a coroutine and discards it (the body
  never runs).
- **S603** — asyncio loop APIs touched from code that runs off-loop
  (a thread target or executor-shipped callable, transitively).
  Starting a *private* loop (``new_event_loop`` → ``run_until_complete``
  → ``run_forever``) and the ``*_threadsafe`` bridges are exempt; the
  coroutine handed to ``run_until_complete`` runs on-loop, so
  off-loop-ness does not propagate through it.
- **S701** — a file/socket/temp file acquired into a local and not
  released on some exception path, judged on the function's CFG
  (``finally`` and ``with`` cleanups sanitize; returning the resource
  or passing it to a callee that closes it transfers ownership —
  callee close summaries come from the same bottom-up fixpoint).
- **S702** — the S701 shape specialized to chaos-instrumented temp
  writes: a ``chaos_point`` crossing sits between ``mkstemp`` and the
  cleanup, so an injected fault leaks the very ``*.tmp`` file the
  soak gate hunts for.
"""

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.callgraph import (CallGraph, CallSite,
                                           build_callgraph,
                                           solve_bottom_up)
from repro.analysis.flow.ir import CFG, Block, build_cfg, dotted_name
from repro.analysis.registry import LintFinding, SuppressionTable

# -- catalogs --------------------------------------------------------------

#: Dotted callables that block the calling thread (matched on
#: *external* sites only; resolved callees go through summaries).
_BLOCKING_DOTTED = {
    "open", "io.open", "os.open", "os.fsync",
    "time.sleep",
    "socket.create_connection", "socket.getaddrinfo",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "select.select", "urllib.request.urlopen",
}

#: Method names that block regardless of receiver.  Kept deliberately
#: tight: ``.wait``/``.result`` are ambiguous with their asyncio
#: namesakes and stay out; an *awaited* ``.acquire`` is the asyncio
#: lock, so only kind="call" sites match.
_BLOCKING_METHODS = {
    "acquire", "recv", "recv_into", "sendall", "accept", "connect",
    "makefile", "getresponse", "urlopen", "glob", "rglob", "iterdir",
    "read_text", "write_text", "read_bytes", "write_bytes", "open",
}

#: Call kinds that keep execution on the current thread/loop.
_ON_LOOP_KINDS = {"call", "await", "task"}

#: asyncio module functions that must run on the loop's thread.
_LOOP_TOUCH_DOTTED = {
    "asyncio.create_task", "asyncio.ensure_future",
    "asyncio.get_running_loop", "asyncio.get_event_loop",
}

#: Loop methods that are *safe* (or only meaningful) off-loop: the
#: thread-safe bridges plus the start/stop verbs of a private loop.
_LOOP_METHOD_EXEMPT = {
    "call_soon_threadsafe", "run_until_complete", "run_forever",
    "close", "is_running", "is_closed", "time", "stop",
    "add_signal_handler", "remove_signal_handler",
}

#: Resource constructors for S701 (dotted, external).
_RESOURCE_CTORS = {
    "open", "io.open", "os.open", "os.fdopen",
    "socket.socket", "socket.create_connection",
    "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryFile", "gzip.open", "bz2.open", "lzma.open",
}
_TEMP_CTORS = {"tempfile.mkstemp", "tempfile.NamedTemporaryFile",
               "tempfile.TemporaryFile"}

#: Releasing method names on the resource itself.
_RELEASE_METHODS = {"close", "unlink", "release", "terminate"}

#: Module functions whose first argument is released/transferred.
_RELEASE_FUNCS = {"os.close", "os.unlink", "os.remove", "os.replace",
                  "os.rename", "os.fdopen", "shutil.move",
                  "contextlib.closing", "closing"}

_CHAOS_HOOKS = {"chaos_point", "chaos_point_async"}


def _short(fid: str) -> str:
    return fid.split("::", 1)[-1]


def _rel(fid: str) -> str:
    return fid.split("::", 1)[0]


# -- S601: blocking summaries ----------------------------------------------

#: Witness = (description, rel, line, chain-of-fids below this fn).
Witness = Tuple[str, str, int, Tuple[str, ...]]


def _direct_blocking(graph: CallGraph,
                     fid: str) -> Optional[Witness]:
    for site in sorted(graph.sites.get(fid, ()),
                       key=lambda s: s.line):
        if site.target is not None or site.kind == "executor":
            continue
        name = site.name
        if name in _BLOCKING_DOTTED:
            return (f"{name}(...)", _rel(fid), site.line, ())
        last = name.rsplit(".", 1)[-1]
        if "." in name and last in _BLOCKING_METHODS \
                and site.kind == "call":
            return (f"{name}(...)", _rel(fid), site.line, ())
        if (last == "join" and site.kind == "call" and "." in name
                and isinstance(site.node, ast.Call)
                and not site.node.args):
            return (f"{name}(...)", _rel(fid), site.line, ())
    return None


def _blocking_summaries(graph: CallGraph) -> Dict[str, Witness]:
    direct = {fid: _direct_blocking(graph, fid)
              for fid in graph.functions}

    def transfer(fid: str,
                 summaries: Dict[str, object]) -> Optional[Witness]:
        if direct[fid] is not None:
            return direct[fid]
        for site in sorted(graph.edges(fid, _ON_LOOP_KINDS),
                           key=lambda s: s.line):
            if graph.functions[site.target].is_async:
                # an async callee is its own frontier: its blocking
                # chain is reported inside it, not at every awaiter
                continue
            sub = summaries.get(site.target)
            if sub is not None:
                desc, rel, line, chain = sub
                return (desc, rel, line,
                        (site.target,) + chain[:3])
        return None

    solved = solve_bottom_up(graph, _ON_LOOP_KINDS, transfer)
    return {fid: w for fid, w in solved.items() if w is not None}


def _s601_findings(graph: CallGraph,
                   blocking: Dict[str, Witness]) -> List[LintFinding]:
    findings = []
    for fid, info in graph.functions.items():
        if not info.is_async:
            continue
        direct = _direct_blocking(graph, fid)
        if direct is not None:
            desc, _, line, _ = direct
            findings.append(LintFinding(
                "S601", info.rel, line,
                f"blocking call {desc} inside async def "
                f"{_short(fid)}; the event loop stalls until it "
                f"returns — hop through run_in_executor"))
        for site in graph.edges(fid, _ON_LOOP_KINDS):
            witness = blocking.get(site.target)
            if witness is None:
                continue
            if graph.functions[site.target].is_async:
                continue  # blame the frontier inside that coroutine
            desc, wrel, wline, chain = witness
            names = " -> ".join(
                _short(f) for f in (site.target,) + chain[:3])
            findings.append(LintFinding(
                "S601", info.rel, site.line,
                f"async def {_short(fid)} reaches blocking {desc} "
                f"({wrel}:{wline}) via {names}; hop through "
                f"run_in_executor or make the chain async"))
    return findings


# -- S602: discarded coroutines --------------------------------------------

def _s602_findings(graph: CallGraph) -> List[LintFinding]:
    findings = []
    for fid, sites in graph.sites.items():
        for site in sites:
            if (site.discarded and site.target is not None
                    and graph.functions[site.target].is_async):
                findings.append(LintFinding(
                    "S602", graph.functions[fid].rel, site.line,
                    f"{site.name}(...) builds a coroutine and "
                    f"discards it — the body never runs; await it "
                    f"or wrap it in asyncio.create_task"))
    return findings


# -- S603: off-loop asyncio touches ----------------------------------------

def _off_loop_set(graph: CallGraph) -> Dict[str, str]:
    """fid -> description of how it ends up on a worker thread."""
    origins: Dict[str, str] = {}
    frontier: List[str] = []
    for fid, sites in graph.sites.items():
        for site in sites:
            if site.kind == "executor" and site.target is not None:
                target = graph.functions[site.target]
                if target.is_async or site.target in origins:
                    continue
                origins[site.target] = (
                    f"handed to a thread/executor at "
                    f"{_rel(fid)}:{site.line}")
                frontier.append(site.target)
    while frontier:
        fid = frontier.pop()
        for callee in graph.callees(fid, {"call"}):
            if callee in origins or graph.functions[callee].is_async:
                continue
            origins[callee] = f"called from off-loop {_short(fid)}"
            frontier.append(callee)
    return origins


def _loop_touch(site: CallSite) -> Optional[str]:
    if site.target is not None:
        return None
    name = site.name
    if name in _LOOP_TOUCH_DOTTED:
        return name
    if "." not in name:
        return None
    receiver, _, method = name.rpartition(".")
    receiver_last = receiver.rsplit(".", 1)[-1]
    if receiver_last in ("loop", "_loop") \
            and method not in _LOOP_METHOD_EXEMPT:
        return name
    return None


def _s603_findings(graph: CallGraph) -> List[LintFinding]:
    findings = []
    for fid, origin in _off_loop_set(graph).items():
        info = graph.functions[fid]
        for site in graph.sites.get(fid, ()):
            if site.kind == "enters-loop":
                continue  # runs on the loop that call starts
            touched = _loop_touch(site)
            if touched is not None:
                findings.append(LintFinding(
                    "S603", info.rel, site.line,
                    f"{touched}(...) in {_short(fid)}, which runs "
                    f"off-loop ({origin}); asyncio state is not "
                    f"thread-safe — use call_soon_threadsafe or a "
                    f"threading primitive"))
    return findings


# -- S7: resource safety ---------------------------------------------------

#: Resource summary: (param names the function closes/releases,
#: whether it returns a resource it acquired).
ResourceSummary = Tuple[frozenset, bool]


def _param_names(info) -> List[str]:
    args = info.decl.node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    return names


def _positional_map(graph: CallGraph, site: CallSite,
                    call: ast.Call) -> List[Tuple[str, str]]:
    """(arg-name-passed, callee-param-name) for bare-Name positionals."""
    target = graph.functions.get(site.target or "")
    if target is None:
        return []
    params = _param_names(target)
    offset = 1 if target.decl.cls and params[:1] == ["self"] else 0
    out = []
    for index, arg in enumerate(call.args):
        if isinstance(arg, ast.Name) and index + offset < len(params):
            out.append((arg.id, params[index + offset]))
    return out


class _ReleaseScanner:
    """Does a statement/expression release one of ``aliases``?"""

    def __init__(self, graph: CallGraph, fid: str,
                 summaries: Dict[str, object],
                 site_of: Dict[int, CallSite]) -> None:
        self.graph = graph
        self.fid = fid
        self.summaries = summaries
        self.site_of = site_of

    def releases(self, exprs: Sequence[ast.AST],
                 aliases: Set[str]) -> bool:
        for root in exprs:
            for node in ast.walk(root):
                if isinstance(node, ast.Call) and \
                        self._call_releases(node, aliases):
                    return True
                if isinstance(node, ast.Return) and \
                        self._mentions(node.value, aliases):
                    return True  # ownership transferred to the caller
                if isinstance(node, ast.Assign) and \
                        self._is_escape(node.value, aliases):
                    return True  # aliased/stored: out of scope here
            if isinstance(root, ast.Return) and \
                    self._mentions(root.value, aliases):
                return True
            if isinstance(root, ast.Assign) and \
                    self._is_escape(root.value, aliases):
                return True
        return False

    def _call_releases(self, node: ast.Call,
                       aliases: Set[str]) -> bool:
        dotted = dotted_name(node.func) or ""
        head, _, method = dotted.rpartition(".")
        if head in aliases and method in _RELEASE_METHODS:
            return True
        site = self.site_of.get(id(node))
        name = site.name if site is not None else dotted
        if name in _RELEASE_FUNCS or \
                name.rsplit(".", 1)[-1] == "closing":
            return any(isinstance(arg, ast.Name) and arg.id in aliases
                       for arg in node.args[:1])
        if site is not None and site.target is not None:
            summary = self.summaries.get(site.target)
            if summary is not None:
                closes = summary[0]
                for passed, param in _positional_map(
                        self.graph, site, node):
                    if passed in aliases and param in closes:
                        return True
        return False

    @staticmethod
    def _mentions(value: Optional[ast.AST],
                  aliases: Set[str]) -> bool:
        if value is None:
            return False
        return any(isinstance(n, ast.Name) and n.id in aliases
                   for n in ast.walk(value))

    @staticmethod
    def _is_escape(value: ast.AST, aliases: Set[str]) -> bool:
        if isinstance(value, ast.Name) and value.id in aliases:
            return True
        if isinstance(value, (ast.Tuple, ast.List)):
            return any(isinstance(e, ast.Name) and e.id in aliases
                       for e in value.elts)
        return False


def _acquisitions(graph: CallGraph, fid: str, cfg: CFG,
                  summaries: Dict[str, object],
                  site_of: Dict[int, CallSite]
                  ) -> List[Tuple[Block, Set[str], bool, str]]:
    """(block, alias-names, is-temp-file, ctor-name) per acquisition."""
    out = []
    for block in cfg.blocks:
        if block.kind != "stmt" or not isinstance(block.node,
                                                  ast.Assign):
            continue
        value = block.node.value
        if not isinstance(value, ast.Call):
            continue
        site = site_of.get(id(value))
        name = (site.name if site is not None
                else dotted_name(value.func)) or ""
        is_ctor = name in _RESOURCE_CTORS
        if not is_ctor and site is not None and site.target is not None:
            summary = summaries.get(site.target)
            if summary is not None and summary[1]:
                is_ctor = True  # callee returns a resource it opened
        if not is_ctor:
            continue
        targets = block.node.targets
        if len(targets) != 1:
            continue
        target = targets[0]
        aliases: Set[str] = set()
        if isinstance(target, ast.Name) and target.id != "_":
            aliases = {target.id}
        elif (isinstance(target, ast.Tuple)
              and name == "tempfile.mkstemp"
              and len(target.elts) == 2
              and isinstance(target.elts[1], ast.Name)):
            # (fd, path): the path is what leaks on disk; the fd is
            # conventionally consumed by os.fdopen immediately.
            aliases = {target.elts[1].id}
        if not aliases:
            continue
        out.append((block, aliases, name in _TEMP_CTORS, name))
    return out


def _resource_summaries(graph: CallGraph) -> Dict[str, object]:
    """Bottom-up (closes-params, returns-resource) summaries."""
    site_maps = {
        fid: {id(s.node): s for s in graph.sites.get(fid, ())}
        for fid in graph.functions}

    def transfer(fid: str,
                 summaries: Dict[str, object]) -> ResourceSummary:
        info = graph.functions[fid]
        scanner = _ReleaseScanner(graph, fid, summaries,
                                  site_maps[fid])
        params = {p for p in _param_names(info) if p != "self"}
        closes = set()
        returns = False
        acquired: Set[str] = set()
        for node in ast.walk(info.decl.node):
            if isinstance(node, ast.Call) and \
                    scanner._call_releases(node, params):
                closes |= {p for p in params
                           if scanner._call_releases(node, {p})}
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call):
                site = site_maps[fid].get(id(node.value))
                name = (site.name if site else
                        dotted_name(node.value.func)) or ""
                sub = (summaries.get(site.target)
                       if site and site.target else None)
                if name in _RESOURCE_CTORS or (sub and sub[1]):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Name):
                            acquired.add(tgt.id)
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call):
                    site = site_maps[fid].get(id(node.value))
                    name = (site.name if site else
                            dotted_name(node.value.func)) or ""
                    sub = (summaries.get(site.target)
                           if site and site.target else None)
                    if name in _RESOURCE_CTORS or (sub and sub[1]):
                        returns = True
                elif scanner._mentions(node.value, acquired):
                    returns = True
        return (frozenset(closes), returns)

    return solve_bottom_up(graph, {"call"}, transfer)


def _s7_findings(graph: CallGraph,
                 summaries: Dict[str, object]) -> List[LintFinding]:
    findings = []
    for fid, info in graph.functions.items():
        site_of = {id(s.node): s for s in graph.sites.get(fid, ())}
        cfg = build_cfg(info.decl.node, fid)
        acquisitions = _acquisitions(graph, fid, cfg, summaries,
                                     site_of)
        if not acquisitions:
            continue
        scanner = _ReleaseScanner(graph, fid, summaries, site_of)
        for block, aliases, is_temp, ctor in acquisitions:
            leaked, chaos = _leak_walk(cfg, block, aliases, scanner)
            if not leaked:
                continue
            what = ("temp file" if is_temp else
                    "socket" if "socket" in ctor else "file handle")
            if is_temp and chaos is not None:
                findings.append(LintFinding(
                    "S702", info.rel, block.line,
                    f"{ctor}(...) temp file can leak through the "
                    f"chaos fault path — {chaos} may raise before "
                    f"cleanup; unlink it on the exception path"))
            else:
                findings.append(LintFinding(
                    "S701", info.rel, block.line,
                    f"{what} from {ctor}(...) is not released when "
                    f"a later statement raises; close it in a "
                    f"finally block or use 'with'"))
    return findings


def _leak_walk(cfg: CFG, start: Block, aliases: Set[str],
               scanner: _ReleaseScanner
               ) -> Tuple[bool, Optional[str]]:
    """DFS from the acquisition: can an exception escape the function
    before any release?  Returns (leaked, chaos-call-name-in-region).
    """
    seen: Set[int] = {start.idx}
    frontier = list(cfg.blocks[start.idx].succ)
    leaked = False
    chaos: Optional[str] = None
    while frontier:
        idx = frontier.pop()
        if idx in seen:
            continue
        seen.add(idx)
        if idx == cfg.raise_exit:
            leaked = True
            continue
        block = cfg.blocks[idx]
        exprs = cfg.block_exprs(block)
        if scanner.releases(exprs, aliases):
            continue
        if chaos is None:
            for root in exprs:
                for node in ast.walk(root):
                    if isinstance(node, ast.Call):
                        name = dotted_name(node.func) or ""
                        if name.rsplit(".", 1)[-1] in _CHAOS_HOOKS:
                            chaos = f"{name} (line {node.lineno})"
        frontier.extend(block.succ)
        if block.exc is not None:
            frontier.append(block.exc)
    return leaked, chaos


# -- entry point -----------------------------------------------------------

def analyze_modules(modules: Sequence[Tuple[str, ast.Module]],
                    tables: Optional[Dict[str,
                                          SuppressionTable]] = None,
                    package: str = "repro") -> List[LintFinding]:
    """Run the S6/S7 families over (rel_path, tree) pairs."""
    graph = build_callgraph(modules, package=package)
    blocking = _blocking_summaries(graph)
    resources = _resource_summaries(graph)
    raw = (_s601_findings(graph, blocking)
           + _s602_findings(graph)
           + _s603_findings(graph)
           + _s7_findings(graph, resources))
    tables = tables or {}
    findings: List[LintFinding] = []
    seen: Set[Tuple[str, int, str]] = set()
    for finding in raw:
        key = (finding.path, finding.line, finding.rule)
        if key in seen:
            continue
        seen.add(key)
        table = tables.get(finding.path)
        if table is not None and table.active(finding.rule,
                                              finding.line):
            continue
        findings.append(finding)
    findings.sort(key=LintFinding.sort_key)
    return findings


def analyze_source(source: str, rel_path: str,
                   package: str = "repro") -> List[LintFinding]:
    """Single-module convenience entry (tests, tooling)."""
    tree = ast.parse(source, filename=rel_path)
    tables = {rel_path: SuppressionTable.from_source(source)}
    return analyze_modules([(rel_path, tree)], tables=tables,
                           package=package)
