"""repro.analysis.flow — interprocedural call-graph/dataflow engine.

The intraprocedural passes (simlint S1–S4, lockset S501–S503) judge
one function or one class at a time; the defects that actually take
the serve daemon down cross function boundaries — a ``time.sleep``
three calls below an ``async def``, a temp file whose cleanup lives in
a caller that never runs on the exception path.  This package follows
the flow:

- :mod:`repro.analysis.flow.ir` — per-function control-flow graphs
  lowered from :mod:`ast`, with try/finally/with exception edges, plus
  the shared AST helpers (dotted names, function iteration) the other
  analyzers build on.
- :mod:`repro.analysis.flow.callgraph` — module-granular call-graph
  construction (imports, ``self`` methods, ctor-assigned members),
  Tarjan SCC condensation, and a generic bottom-up summary fixpoint.
- :mod:`repro.analysis.flow.rules` — the S6xx async-safety and S7xx
  resource-safety rule families, computed as function summaries
  propagated over the call graph.

Entry point: :func:`repro.analysis.flow.rules.analyze_modules`, wired
into ``repro lint`` next to the simlint pass.
"""

from repro.analysis.flow.callgraph import CallGraph, build_callgraph
from repro.analysis.flow.ir import CFG, build_cfg, dotted_name
from repro.analysis.flow.rules import analyze_modules

__all__ = ["CFG", "CallGraph", "analyze_modules", "build_callgraph",
           "build_cfg", "dotted_name"]
