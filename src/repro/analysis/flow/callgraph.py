"""Module-granular call-graph construction over parsed source trees.

Resolution is deliberately the cheap four-fifths: module-level
functions, ``from x import y`` (chased through package re-exports),
``self.method``, and ``self.member.method`` chains where the member's
class is known from the constructor — the same ctor-assignment and
parameter-annotation machinery the lockset analyzer uses for its
member models.  Anything else stays an *external* call site carrying
its dotted text, which is exactly what the rule catalogs match
(``time.sleep``, ``.acquire``, ``.glob``).

Each call site records how the callee runs relative to the caller:

=========== ==========================================================
call        plain synchronous call — callee runs here, now
await       awaited (or wrapped in ``wait_for``/``shield``/…) — callee
            runs on the same event loop
task        handed to ``create_task``/``ensure_future``/``gather`` —
            runs later, still on the loop
executor    callable *reference* passed to ``run_in_executor`` /
            ``Executor.submit`` / ``Thread(target=…)`` — runs on a
            worker thread (the executor hop S601 looks for)
enters-loop call written as the argument of ``run_until_complete`` /
            ``asyncio.run`` — runs *on* the loop that call starts
=========== ==========================================================

On top sit Tarjan SCC condensation and :func:`solve_bottom_up`, a
generic callee-first summary fixpoint the rule families instantiate.
"""

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.flow.ir import (FuncDecl, dotted_name,
                                    iter_functions, parse_annotation)

#: Wrappers whose call arguments are awaited/scheduled on the loop.
_SCHED_WRAPPERS = {"create_task", "ensure_future", "gather", "wait_for",
                   "shield", "wait", "as_completed",
                   "run_coroutine_threadsafe"}
#: Calls whose argument coroutine runs on the loop they start.
_LOOP_RUNNERS = {"run_until_complete"}
_LOOP_RUNNER_DOTTED = {"asyncio.run"}
#: Callables whose first positional argument is a callable shipped to
#: a worker thread.
_EXECUTOR_SHIPS = {"run_in_executor", "submit"}

_IMPORT_CHASE_LIMIT = 8


@dataclass
class FunctionInfo:
    fid: str  # "serve/api.py::ServeServer._submit"
    rel: str
    decl: FuncDecl

    @property
    def is_async(self) -> bool:
        return self.decl.is_async

    @property
    def line(self) -> int:
        return self.decl.node.lineno


@dataclass
class CallSite:
    caller: str
    name: str  # canonical dotted text ("time.sleep", "self.cache.get")
    target: Optional[str]  # resolved fid, or None for external calls
    kind: str  # call | await | task | executor | enters-loop
    node: ast.AST
    discarded: bool = False  # expression-statement position

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class _Class:
    name: str
    rel: str
    methods: Dict[str, str]  # method name -> local qualname
    bases: List[str] = field(default_factory=list)  # dotted as written
    members: Dict[str, str] = field(default_factory=dict)  # attr -> cid

    @property
    def cid(self) -> str:
        return f"{self.rel}::{self.name}"


@dataclass
class _Module:
    rel: str
    dotted: str  # "repro.serve.api"
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, _Class] = field(default_factory=dict)
    #: module-level variable name -> cid (annotation or ctor assign)
    globals: Dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and call sites of one analyzed tree."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.sites: Dict[str, List[CallSite]] = {}
        self.modules: Dict[str, _Module] = {}
        self.classes: Dict[str, _Class] = {}  # cid -> class

    def edges(self, fid: str,
              kinds: Optional[Set[str]] = None) -> List[CallSite]:
        """Resolved call sites out of ``fid``, optionally by kind."""
        return [site for site in self.sites.get(fid, ())
                if site.target is not None
                and (kinds is None or site.kind in kinds)]

    def callees(self, fid: str, kinds: Set[str]) -> List[str]:
        return [site.target for site in self.edges(fid, kinds)]


def build_callgraph(modules: Sequence[Tuple[str, ast.Module]],
                    package: str = "repro") -> CallGraph:
    builder = _GraphBuilder(modules, package)
    return builder.graph


class _GraphBuilder:
    def __init__(self, modules: Sequence[Tuple[str, ast.Module]],
                 package: str) -> None:
        self.package = package
        self.graph = CallGraph()
        self.by_dotted: Dict[str, _Module] = {}
        for rel, tree in modules:
            module = _Module(rel, self._dotted_of(rel), tree)
            self.graph.modules[rel] = module
            self.by_dotted[module.dotted] = module
        for module in self.graph.modules.values():
            self._index_module(module)
        for module in self.graph.modules.values():
            self._resolve_members(module)
            self._resolve_globals(module)
        for module in self.graph.modules.values():
            for info in module.functions.values():
                self.graph.sites[info.fid] = _SiteCollector(
                    self, module, info).collect()

    def _dotted_of(self, rel: str) -> str:
        parts = rel[:-3].split("/")  # strip .py
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join([self.package] + parts)

    # -- pass 1: declarations ----------------------------------------
    def _index_module(self, module: _Module) -> None:
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    module.imports[local] = (alias.name if alias.asname
                                             else alias.name.split(".")[0])
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(module, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{base}.{alias.name}"
        for decl in iter_functions(module.tree):
            info = FunctionInfo(f"{module.rel}::{decl.qualname}",
                                module.rel, decl)
            module.functions[decl.qualname] = info
            self.graph.functions[info.fid] = info
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            methods = {
                item.name: f"{stmt.name}.{item.name}"
                for item in stmt.body
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))}
            cls = _Class(stmt.name, module.rel, methods,
                         bases=[dotted_name(b) or "" for b in stmt.bases])
            module.classes[stmt.name] = cls
            self.graph.classes[cls.cid] = cls

    def _import_base(self, module: _Module,
                     stmt: ast.ImportFrom) -> str:
        if not stmt.level:
            return stmt.module or ""
        parts = module.dotted.split(".")
        if not module.rel.endswith("__init__.py"):
            parts = parts[:-1]  # the module's own package
        parts = parts[:len(parts) - (stmt.level - 1)]
        if stmt.module:
            parts.append(stmt.module)
        return ".".join(parts)

    # -- entity resolution -------------------------------------------
    def resolve_entity(self, dotted: str,
                       depth: int = 0) -> Optional[Tuple[str, object]]:
        """("func", FunctionInfo) | ("class", _Class) | None."""
        if depth > _IMPORT_CHASE_LIMIT:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = self.by_dotted.get(".".join(parts[:cut]))
            if module is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in module.classes:
                cls = module.classes[head]
                if len(rest) == 1:
                    return ("class", cls)
                if len(rest) == 2 and rest[1] in cls.methods:
                    return ("func",
                            module.functions[cls.methods[rest[1]]])
                return None
            if len(rest) == 1 and head in module.functions:
                return ("func", module.functions[head])
            if head in module.imports:  # package re-export chain
                chased = ".".join([module.imports[head]] + rest[1:])
                return self.resolve_entity(chased, depth + 1)
            return None
        return None

    def resolve_local(self, module: _Module,
                      name: str) -> Optional[Tuple[str, object]]:
        """A bare name in module scope: local def, class, or import."""
        if name in module.classes:
            return ("class", module.classes[name])
        if name in module.functions:
            return ("func", module.functions[name])
        if name in module.imports:
            return self.resolve_entity(module.imports[name])
        return None

    def class_by_name(self, module: _Module,
                      name: Optional[str]) -> Optional[_Class]:
        if not name:
            return None
        entity = self.resolve_local(module, name.rsplit(".", 1)[-1])
        if entity and entity[0] == "class":
            return entity[1]
        return None

    def method_of(self, cls: Optional[_Class],
                  name: str) -> Optional[FunctionInfo]:
        """Method lookup with one level of base-class chasing."""
        seen: Set[str] = set()
        while cls is not None and cls.cid not in seen:
            seen.add(cls.cid)
            if name in cls.methods:
                module = self.graph.modules[cls.rel]
                return module.functions.get(cls.methods[name])
            parent = None
            for base in cls.bases:
                parent = self.class_by_name(
                    self.graph.modules[cls.rel], base)
                if parent is not None:
                    break
            cls = parent
        return None

    # -- pass 2: member types ----------------------------------------
    def _resolve_globals(self, module: _Module) -> None:
        """Types of module-level variables (``_CONTROLLER:
        Optional[ChaosController] = None`` and ctor assigns)."""
        for stmt in module.tree.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                cls = self.class_by_name(
                    module, parse_annotation(stmt.annotation))
                if cls is not None:
                    module.globals[stmt.target.id] = cls.cid
            elif isinstance(stmt, ast.Assign):
                cls = self._value_class(module, stmt.value, {})
                if cls is None:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.globals[target.id] = cls.cid

    def _resolve_members(self, module: _Module) -> None:
        for cls in module.classes.values():
            init = module.functions.get(cls.methods.get("__init__", ""))
            if init is None:
                continue
            var_types = self._param_types(module, init.decl.node)
            for node in ast.walk(init.decl.node):
                if not isinstance(node, ast.Assign):
                    continue
                value_cls = self._value_class(module, node.value,
                                              var_types)
                for target in node.targets:
                    if (isinstance(target, ast.Name)
                            and value_cls is not None):
                        var_types[target.id] = value_cls.cid
                    attr = _self_attr(target)
                    if attr is not None and value_cls is not None:
                        cls.members[attr] = value_cls.cid

    def _param_types(self, module: _Module,
                     func: ast.AST) -> Dict[str, str]:
        types: Dict[str, str] = {}
        args = func.args
        for arg in args.args + args.kwonlyargs + args.posonlyargs:
            cls = self.class_by_name(module,
                                     parse_annotation(arg.annotation))
            if cls is not None:
                types[arg.arg] = cls.cid
        return types

    def _value_class(self, module: _Module, value: ast.AST,
                     var_types: Dict[str, str]) -> Optional[_Class]:
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            return self.class_by_name(module, name) if name else None
        if isinstance(value, ast.Name):
            cid = var_types.get(value.id) or \
                module.globals.get(value.id)
            if cid is not None:
                return self.graph.classes.get(cid)
        return None


def _self_attr(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class _SiteCollector:
    """Every call occurrence of one function, kind-classified."""

    def __init__(self, builder: _GraphBuilder, module: _Module,
                 info: FunctionInfo) -> None:
        self.b = builder
        self.module = module
        self.info = info
        self.sites: List[CallSite] = []
        self.var_types = builder._param_types(module, info.decl.node)
        self._collect_local_types()

    def _collect_local_types(self) -> None:
        for stmt in ast.walk(self.info.decl.node):
            if isinstance(stmt, ast.Assign):
                cls = self.b._value_class(self.module, stmt.value,
                                          self.var_types)
                if cls is not None:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            self.var_types[target.id] = cls.cid
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                cls = self.b.class_by_name(
                    self.module, parse_annotation(stmt.annotation))
                if cls is not None:
                    self.var_types[stmt.target.id] = cls.cid

    # -- traversal ----------------------------------------------------
    def collect(self) -> List[CallSite]:
        for stmt in self._own_statements(self.info.decl.node):
            discard = (isinstance(stmt, ast.Expr)
                       and isinstance(stmt.value, ast.Call))
            for expr in self._stmt_exprs(stmt):
                self._visit(expr, "call",
                            discard_root=stmt.value if discard else None)
        return self.sites

    def _own_statements(self, func: ast.AST) -> List[ast.stmt]:
        """Statements executed by this function — nested defs' bodies
        belong to their own FunctionInfo."""
        out: List[ast.stmt] = []
        stack: List[ast.stmt] = list(func.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            out.append(stmt)
            for name in ("body", "orelse", "finalbody"):
                block = getattr(stmt, name, None)
                if isinstance(block, list):
                    stack.extend(s for s in block
                                 if isinstance(s, ast.stmt))
            for handler in getattr(stmt, "handlers", []):
                stack.extend(handler.body)
            for case in getattr(stmt, "cases", []):
                stack.extend(case.body)
        return out

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> List[ast.expr]:
        out: List[ast.expr] = []
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list):
                out.extend(v for v in value if isinstance(v, ast.expr))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            out.extend(item.context_expr for item in stmt.items)
        return out

    def _visit(self, node: ast.AST, ctx: str,
               discard_root: Optional[ast.AST] = None) -> None:
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            return  # deferred execution, separate scope
        if isinstance(node, ast.Await):
            value = node.value
            self._visit(value, "await" if isinstance(value, ast.Call)
                        else ctx)
            return
        if isinstance(node, ast.Call):
            self._visit_call(node, ctx, discard_root)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, ctx)

    def _visit_call(self, node: ast.Call, ctx: str,
                    discard_root: Optional[ast.AST]) -> None:
        dotted = dotted_name(node.func)
        canonical = self._canonical(dotted)
        last = canonical.rsplit(".", 1)[-1] if canonical else ""
        self._record(node, canonical or "?", ctx,
                     discarded=node is discard_root and ctx == "call")
        # Receiver subexpressions may hold further calls.
        if isinstance(node.func, ast.Attribute):
            self._visit(node.func.value, "call")
        arg_ctx = "call"
        ship_slots: List[int] = []
        if last in _SCHED_WRAPPERS:
            arg_ctx = "task"
        elif last in _LOOP_RUNNERS or canonical in _LOOP_RUNNER_DOTTED:
            arg_ctx = "enters-loop"
        elif last in _EXECUTOR_SHIPS:
            # run_in_executor(executor, fn, *args) / submit(fn, *args)
            ship_slots = [1] if last == "run_in_executor" else [0]
        for index, arg in enumerate(node.args):
            if index in ship_slots:
                self._record_ref(arg)
            else:
                self._visit(arg, arg_ctx)
        for keyword in node.keywords:
            if last == "Thread" and keyword.arg == "target":
                self._record_ref(keyword.value)
            else:
                self._visit(keyword.value, arg_ctx)

    def _record_ref(self, node: ast.AST) -> None:
        """A callable reference shipped to a worker thread."""
        if (isinstance(node, ast.Call)
                and (dotted_name(node.func) or "").endswith("partial")
                and node.args):
            for extra in node.args[1:]:
                self._visit(extra, "call")
            node = node.args[0]
        dotted = dotted_name(node)
        if dotted is None:
            self._visit(node, "call")
            return
        self._record_named(node, self._canonical(dotted) or dotted,
                           "executor")

    def _canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Expand a leading import alias to its full dotted form."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        full = self.module.imports.get(head)
        if full is None or head in ("self",):
            return dotted
        return f"{full}.{rest}" if rest else full

    def _record(self, node: ast.Call, name: str, ctx: str,
                discarded: bool) -> None:
        self._record_named(node, name, ctx, discarded)

    def _record_named(self, node: ast.AST, name: str, kind: str,
                      discarded: bool = False) -> None:
        target = self._resolve(name)
        self.sites.append(CallSite(self.info.fid, name,
                                   target.fid if target else None,
                                   kind, node, discarded))

    # -- resolution ---------------------------------------------------
    def _resolve(self, dotted: str) -> Optional[FunctionInfo]:
        if not dotted or dotted == "?":
            return None
        parts = dotted.split(".")
        if parts[0] == "self":
            return self._resolve_self(parts[1:])
        if len(parts) == 1:
            return self._resolve_bare(parts[0])
        if parts[0] in self.var_types:
            return self._resolve_chain(
                self.b.graph.classes.get(self.var_types[parts[0]]),
                parts[1:])
        if parts[0] in self.module.globals:
            return self._resolve_chain(
                self.b.graph.classes.get(self.module.globals[parts[0]]),
                parts[1:])
        entity = self.b.resolve_entity(dotted)
        if entity is None:
            return None
        if entity[0] == "func":
            return entity[1]
        return self.b.method_of(entity[1], "__init__")  # constructor

    def _resolve_self(self,
                      chain: List[str]) -> Optional[FunctionInfo]:
        cls = self.module.classes.get(self.info.decl.cls or "")
        return self._resolve_chain(cls, chain)

    def _resolve_chain(self, cls: Optional[_Class],
                       chain: List[str]) -> Optional[FunctionInfo]:
        """member.member….method lookup through known member types."""
        if cls is None or not chain:
            return None
        for attr in chain[:-1]:
            cid = cls.members.get(attr)
            cls = self.b.graph.classes.get(cid) if cid else None
            if cls is None:
                return None
        return self.b.method_of(cls, chain[-1])

    def _resolve_bare(self, name: str) -> Optional[FunctionInfo]:
        # Enclosing-scope nested defs first (thread targets are often
        # closures), then module scope.
        scope = self.info.decl.qualname
        while "." in scope:
            scope = scope.rsplit(".", 1)[0]
            candidate = self.module.functions.get(f"{scope}.{name}")
            if candidate is not None:
                return candidate
        candidate = self.module.functions.get(
            f"{self.info.decl.qualname}.{name}")
        if candidate is not None:
            return candidate
        entity = self.b.resolve_local(self.module, name)
        if entity is None:
            return None
        if entity[0] == "func":
            return entity[1]
        return self.b.method_of(entity[1], "__init__")


# -- SCC condensation and summary fixpoint ---------------------------------

def strongly_connected(nodes: Sequence[str],
                       succ: Callable[[str], Sequence[str]]
                       ) -> List[List[str]]:
    """Tarjan SCCs, emitted callees-first (reverse topological)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    out: List[List[str]] = []
    counter = [0]

    def visit(root: str) -> None:
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = [c for c in succ(node) if c != node]
            advanced = False
            for offset in range(child_idx, len(children)):
                child = children[offset]
                if child not in index:
                    work.append((node, offset + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            if low[node] == index[node]:
                scc: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                out.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for node in nodes:
        if node not in index:
            visit(node)
    return out


def solve_bottom_up(graph: CallGraph, kinds: Set[str],
                    transfer: Callable[[str, Dict[str, object]], object]
                    ) -> Dict[str, object]:
    """Generic callee-first summary fixpoint.

    ``transfer(fid, summaries)`` computes one function's summary given
    the current summary map; within an SCC it is re-run until the
    component stabilizes (summaries must grow monotonically for this
    to terminate — ours are reach-one-witness, which do).
    """
    order = strongly_connected(
        sorted(graph.functions),
        lambda fid: [t for t in graph.callees(fid, kinds)
                     if t in graph.functions])
    summaries: Dict[str, object] = {}
    for scc in order:
        changed = True
        while changed:
            changed = False
            for fid in scc:
                new = transfer(fid, summaries)
                if new != summaries.get(fid):
                    summaries[fid] = new
                    changed = True
    return summaries
