"""Per-function control-flow graphs lowered from the stdlib ``ast``.

One :class:`CFG` per function: statement-granular blocks, normal
successor edges, and one exception edge per block pointing at the
innermost construct that would observe a raise there —
``try``/``except`` dispatch, a ``finally`` chain, a ``with`` cleanup,
or the function's virtual ``raise`` exit.  ``finally`` bodies are
lowered twice (once on the normal path, once on the exception path) so
a release in a ``finally`` sanitizes *both*; abrupt exits (``return``
/ ``break`` / ``continue``) unwind through every pending ``finally``
and ``with`` cleanup, exactly as the interpreter does.

The module also hosts the small AST helpers (dotted names, function
iteration) shared with :mod:`repro.analysis.simlint` and
:mod:`repro.verify.lockset`, so the three analyzers agree on what a
call is called.
"""

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

#: Block kinds.  "stmt" blocks hold one simple statement; "branch"
#: blocks hold a compound statement's header expression (test / iter /
#: subject); "with-enter"/"with-cleanup" hold the ``ast.With`` whose
#: items they acquire/release; "def" marks a nested definition
#: (bound, not executed); the rest are structural.
_STRUCTURAL = ("entry", "exit", "raise", "join")


@dataclass
class Block:
    idx: int
    kind: str
    node: Optional[ast.AST] = None
    succ: List[int] = field(default_factory=list)
    #: Where an exception raised in this block lands (None only for
    #: the structural exit/raise blocks).
    exc: Optional[int] = None

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class CFG:
    qualname: str
    func: ast.AST  # FunctionDef | AsyncFunctionDef
    blocks: List[Block]
    entry: int
    exit: int
    raise_exit: int

    def block_exprs(self, block: Block) -> List[ast.AST]:
        """The AST nodes whose *expressions* execute in ``block``.

        Compound statements contribute only their headers here — their
        bodies live in their own blocks — so scanning a block never
        double-counts nested code.
        """
        if block.kind == "stmt":
            return [block.node] if block.node is not None else []
        if block.kind == "branch":
            return [block.node] if block.node is not None else []
        if block.kind in ("with-enter", "with-cleanup"):
            out: List[ast.AST] = []
            for item in block.node.items:
                out.append(item.context_expr)
                if block.kind == "with-enter" and item.optional_vars:
                    out.append(item.optional_vars)
            return out
        return []

    def can_reach(self, start: int, target: int,
                  stop: Callable[[Block], bool]) -> bool:
        """Is ``target`` reachable from ``start`` along normal *and*
        exception edges without expanding a block ``stop`` accepts?

        ``start``'s normal successors seed the walk — its own ``exc``
        edge is excluded (if ``start`` itself raises, whatever it was
        about to produce never existed); a stopping block is reached
        but not traversed through.
        """
        seen = {start}
        frontier = list(self.blocks[start].succ)
        while frontier:
            idx = frontier.pop()
            if idx in seen:
                continue
            seen.add(idx)
            if idx == target:
                return True
            block = self.blocks[idx]
            if stop(block):
                continue
            frontier.extend(self._successors(block))
        return False

    def _successors(self, block: Block) -> Iterator[int]:
        yield from block.succ
        if block.exc is not None:
            yield block.exc


@dataclass
class _Frame:
    """One enclosing construct an abrupt exit must unwind through."""

    kind: str  # "loop" | "finally" | "with"
    head: Optional[int] = None
    after: Optional[int] = None
    finalbody: Optional[Sequence[ast.stmt]] = None
    exc: Optional[int] = None
    with_node: Optional[ast.AST] = None


def _handler_exhaustive(handler: ast.AST) -> bool:
    """Does this ``except`` clause catch everything that matters?

    ``except Exception`` technically misses KeyboardInterrupt and
    SystemExit, but for resource-leak purposes code that catches
    Exception has made its cleanup decision — treating it as porous
    would flag every such guard.
    """
    if handler.type is None:
        return True
    name = dotted_name(handler.type)
    return name is not None and \
        name.rsplit(".", 1)[-1] in ("BaseException", "Exception")


class _Builder:
    def __init__(self, func: ast.AST, qualname: str) -> None:
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.raise_exit = self._new("raise")
        self.frames: List[_Frame] = []
        ends = self._lower(func.body, [self.entry], self.raise_exit)
        self._connect(ends, self.exit)
        self.cfg = CFG(qualname, func, self.blocks, self.entry,
                       self.exit, self.raise_exit)

    # -- plumbing ----------------------------------------------------
    def _new(self, kind: str, node: Optional[ast.AST] = None,
             exc: Optional[int] = None) -> int:
        block = Block(len(self.blocks), kind, node, exc=exc)
        self.blocks.append(block)
        return block.idx

    def _connect(self, preds: Sequence[int], target: int) -> None:
        for pred in preds:
            if target not in self.blocks[pred].succ:
                self.blocks[pred].succ.append(target)

    # -- lowering ----------------------------------------------------
    def _lower(self, stmts: Sequence[ast.stmt], preds: List[int],
               exc: int) -> List[int]:
        for stmt in stmts:
            if not preds:
                break  # unreachable after return/raise/break
            preds = self._lower_stmt(stmt, preds, exc)
        return preds

    def _lower_stmt(self, stmt: ast.stmt, preds: List[int],
                    exc: int) -> List[int]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            block = self._new("def", stmt, exc)
            self._connect(preds, block)
            return [block]
        if isinstance(stmt, ast.Return):
            block = self._new("stmt", stmt, exc)
            self._connect(preds, block)
            ends = self._unwind([block], len(self.frames))
            self._connect(ends, self.exit)
            return []
        if isinstance(stmt, ast.Raise):
            block = self._new("stmt", stmt, exc)
            self._connect(preds, block)
            return []
        if isinstance(stmt, (ast.Break, ast.Continue)):
            block = self._new("stmt", stmt, exc)
            self._connect(preds, block)
            depth = len(self.frames)
            while depth and self.frames[depth - 1].kind != "loop":
                depth -= 1
            ends = self._unwind([block], len(self.frames), down_to=depth)
            if depth:  # malformed code outside a loop: drop the edge
                loop = self.frames[depth - 1]
                target = (loop.after if isinstance(stmt, ast.Break)
                          else loop.head)
                self._connect(ends, target)
            return []
        if isinstance(stmt, ast.If):
            branch = self._new("branch", stmt.test, exc)
            self._connect(preds, branch)
            ends = self._lower(stmt.body, [branch], exc)
            if stmt.orelse:
                ends = ends + self._lower(stmt.orelse, [branch], exc)
            else:
                ends = ends + [branch]
            return ends
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = (stmt.test if isinstance(stmt, ast.While)
                      else stmt.iter)
            head = self._new("branch", header, exc)
            after = self._new("join", None, exc)
            self._connect(preds, head)
            self.frames.append(_Frame("loop", head=head, after=after))
            body_ends = self._lower(stmt.body, [head], exc)
            self.frames.pop()
            self._connect(body_ends, head)
            else_ends = (self._lower(stmt.orelse, [head], exc)
                         if stmt.orelse else [head])
            self._connect(else_ends, after)
            return [after]
        if isinstance(stmt, ast.Try):
            return self._lower_try(stmt, preds, exc)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._lower_with(stmt, preds, exc)
        if isinstance(stmt, ast.Match):
            branch = self._new("branch", stmt.subject, exc)
            self._connect(preds, branch)
            ends: List[int] = [branch]
            for case in stmt.cases:
                ends = ends + self._lower(case.body, [branch], exc)
            return ends
        block = self._new("stmt", stmt, exc)
        self._connect(preds, block)
        return [block]

    def _lower_try(self, stmt: ast.Try, preds: List[int],
                   exc: int) -> List[int]:
        outer_exc = exc
        if stmt.finalbody:
            # The exception-path copy of the finally chain: exceptions
            # from the body/handlers land here, run it, and re-raise
            # outward.
            f_exc_join = self._new("join", None, outer_exc)
            f_exc_ends = self._lower(stmt.finalbody, [f_exc_join],
                                     outer_exc)
            self._connect(f_exc_ends, outer_exc)
            escape = f_exc_join
            self.frames.append(_Frame("finally",
                                      finalbody=stmt.finalbody,
                                      exc=outer_exc))
        else:
            escape = outer_exc
        if stmt.handlers:
            dispatch = self._new("join", None, None)
            body_exc = dispatch
        else:
            dispatch = None
            body_exc = escape
        body_ends = self._lower(stmt.body, list(preds), body_exc)
        if stmt.orelse:
            body_ends = self._lower(stmt.orelse, body_ends, escape)
        handler_ends: List[int] = []
        if dispatch is not None:
            # An exception no handler matches keeps propagating —
            # unless some handler is exhaustive (bare ``except:`` or
            # ``except (Base)Exception``), in which case nothing slips
            # past the dispatch.
            if not any(_handler_exhaustive(h) for h in stmt.handlers):
                self._connect([dispatch], escape)
            for handler in stmt.handlers:
                handler_ends.extend(
                    self._lower(handler.body, [dispatch], escape))
        ends = body_ends + handler_ends
        if stmt.finalbody:
            self.frames.pop()
            ends = self._lower(stmt.finalbody, ends, outer_exc)
        return ends

    def _lower_with(self, stmt: ast.AST, preds: List[int],
                    exc: int) -> List[int]:
        enter = self._new("with-enter", stmt, exc)
        self._connect(preds, enter)
        cleanup_exc = self._new("with-cleanup", stmt, exc)
        self._connect([cleanup_exc], exc)  # __exit__ then re-raise
        self.frames.append(_Frame("with", with_node=stmt, exc=exc))
        body_ends = self._lower(stmt.body, [enter], cleanup_exc)
        self.frames.pop()
        cleanup_norm = self._new("with-cleanup", stmt, exc)
        self._connect(body_ends, cleanup_norm)
        return [cleanup_norm]

    def _unwind(self, preds: List[int], depth: int,
                down_to: int = 0) -> List[int]:
        """Run pending finally/with cleanups from ``depth`` (exclusive
        top of stack) down to ``down_to``, innermost first."""
        for frame in reversed(self.frames[down_to:depth]):
            if frame.kind == "finally":
                preds = self._lower(list(frame.finalbody), preds,
                                    frame.exc)
            elif frame.kind == "with":
                cleanup = self._new("with-cleanup", frame.with_node,
                                    frame.exc)
                self._connect(preds, cleanup)
                preds = [cleanup]
        return preds


def build_cfg(func: ast.AST, qualname: str = "") -> CFG:
    """Lower one ``FunctionDef``/``AsyncFunctionDef`` to a CFG."""
    return _Builder(func, qualname or func.name).cfg


# -- shared AST helpers ----------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class FuncDecl:
    """One function/method definition found in a module tree."""

    qualname: str  # "Class.method", "func", "Class.method.inner"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str]  # enclosing class name, if a method
    parent: Optional[str]  # enclosing function qualname, if nested

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)


def iter_functions(tree: ast.Module) -> Iterator[FuncDecl]:
    """Every function in ``tree``, methods and nested defs included."""

    def walk(body: Sequence[ast.stmt], prefix: str,
             cls: Optional[str], parent: Optional[str]
             ) -> Iterator[FuncDecl]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{stmt.name}"
                yield FuncDecl(qual, stmt, cls, parent)
                yield from walk(stmt.body, f"{qual}.", cls, qual)
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, f"{prefix}{stmt.name}.",
                                stmt.name, parent)

    yield from walk(tree.body, "", None, None)


def parse_annotation(node: Optional[ast.AST]) -> Optional[str]:
    """A class name out of an annotation: ``X``, ``"X"``,
    ``Optional[X]``, ``mod.X`` → ``"X"``; anything fancier → None."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("\"'").rsplit(".", 1)[-1] or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        name = dotted_name(node.value) or ""
        if name.rsplit(".", 1)[-1] == "Optional":
            return parse_annotation(node.slice)
    return None


def call_args(node: ast.Call) -> List[Tuple[Optional[str], ast.AST]]:
    """(keyword-or-None, value) pairs of a call, positional first."""
    out: List[Tuple[Optional[str], ast.AST]] = [
        (None, arg) for arg in node.args]
    out.extend((kw.arg, kw.value) for kw in node.keywords)
    return out
