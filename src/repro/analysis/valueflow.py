"""Bit-level value propagation for ACE/AVF analysis.

Two cooperating fixpoints over the RISC-R CFG, layered on top of the
set-level solvers in :mod:`repro.analysis.dataflow`:

- :func:`solve_known_bits` — a *forward* known-bits lattice (the
  classic ``(mask, value)`` pair per register: bit *i* of ``mask`` set
  means bit *i* of the register provably equals bit *i* of ``value`` on
  every fault-free path).  This generalizes the must-constant solver:
  an ``ANDI r, x, 0xFF`` yields 56 known-zero high bits even when ``x``
  is entirely unknown.

- :func:`solve_bit_liveness` — a *backward* per-bit demand analysis.
  ``demand[r]`` bit *b* is set at a program point iff flipping bit *b*
  of register *r* there could alter an output that crosses the sphere
  of replication (a store address/value, or control flow, which decides
  *which* stores execute).  Un-demanded bits are exactly the un-ACE
  (masked) fault sites the AVF analyzer reports.

Soundness contract (what :mod:`repro.avf` and its campaign
cross-validation lean on): under the single-transient-fault model, if a
bit is un-demanded at the point a flip is injected, the architectural
store stream of the faulty run is identical to the golden run.  The
per-opcode demand transfer functions below are each justified by the
*deviation-confinement* invariant: if the deviation of every input
value is confined to that input's un-demanded bits, the deviation of
the output is confined to the output's un-demanded bits.  Forward
known-bits facts are only consulted about operand bits that the same
rule *demands* (hence that carry golden values in any masked scenario)
— see the asymmetric AND/OR rules and the one-known-one-bit branch
rule.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG
from repro.analysis.dataflow import solve_liveness, written_reg
from repro.isa.executor import alu_result
from repro.isa.instructions import (NUM_ARCH_REGS, ZERO_REG, Instruction, Op)
from repro.util.bits import MASK64, to_unsigned

ALL_BITS = MASK64

#: Registers per thread; demand states are lists of this length.
_REGS = NUM_ARCH_REGS


# ---------------------------------------------------------------------------
# Known bits (forward)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KnownBits:
    """Partial knowledge of a 64-bit value.

    ``mask`` selects the known bit positions; ``value`` holds their
    values (``value & ~mask == 0`` invariant).  ``mask == 0`` is the
    lattice top (nothing known); ``mask == MASK64`` is a constant.
    """

    mask: int
    value: int

    def __post_init__(self) -> None:
        if self.value & ~self.mask & MASK64:
            raise ValueError("KnownBits value outside mask")

    @property
    def known_zero(self) -> int:
        return self.mask & ~self.value & MASK64

    @property
    def known_one(self) -> int:
        return self.value

    @property
    def is_constant(self) -> bool:
        return self.mask == MASK64

    def join(self, other: "KnownBits") -> "KnownBits":
        """Lattice meet at a CFG merge: keep agreeing known bits."""
        mask = self.mask & other.mask & ~(self.value ^ other.value) & MASK64
        return KnownBits(mask, self.value & mask)


KB_TOP = KnownBits(0, 0)
KB_ZERO = KnownBits(MASK64, 0)


def kb_const(value: int) -> KnownBits:
    return KnownBits(MASK64, to_unsigned(value))


def kb_not(a: KnownBits) -> KnownBits:
    return KnownBits(a.mask, a.known_zero)


def kb_add(a: KnownBits, b: KnownBits, carry_in: int = 0) -> KnownBits:
    """Known bits of ``a + b + carry_in`` (the LLVM carry-extremes rule).

    ``possible_sum_one``/``possible_sum_zero`` are the sums with every
    unknown bit set to its minimum / maximum; a result bit is known
    where both operand bits and the incoming carry are known, which is
    exactly where the two extreme sums agree.
    """
    a_zero, a_one = a.known_zero, a.known_one
    b_zero, b_one = b.known_zero, b.known_one
    a_max = (a.value | ~a.mask) & MASK64
    b_max = (b.value | ~b.mask) & MASK64
    possible_sum_zero = (a_max + b_max + carry_in) & MASK64
    possible_sum_one = (a.value + b.value + carry_in) & MASK64
    carry_known_zero = ~(possible_sum_zero ^ a_zero ^ b_zero) & MASK64
    carry_known_one = (possible_sum_one ^ a_one ^ b_one) & MASK64
    known = a.mask & b.mask & (carry_known_zero | carry_known_one)
    # Belt and braces: only keep bits where both extreme sums agree.
    known &= ~(possible_sum_zero ^ possible_sum_one) & MASK64
    return KnownBits(known, possible_sum_one & known)


def kb_sub(a: KnownBits, b: KnownBits) -> KnownBits:
    return kb_add(a, kb_not(b), carry_in=1)


def kb_mul(a: KnownBits, b: KnownBits) -> KnownBits:
    """Low bits of a product: ``a*b mod 2**k`` depends only on the low
    ``k`` bits of each operand, so the longest fully-known low runs of
    the operands pin the same run of the product."""
    if a.is_constant and b.is_constant:
        return kb_const(a.value * b.value)
    ka = _trailing_known(a.mask)
    kb = _trailing_known(b.mask)
    k = min(ka, kb)
    if k == 0:
        return KB_TOP
    low = (1 << k) - 1
    return KnownBits(low, (a.value * b.value) & low)


def _trailing_known(mask: int) -> int:
    """Length of the contiguous known run starting at bit 0."""
    inverted = ~mask & MASK64
    if inverted == 0:
        return 64
    return (inverted & -inverted).bit_length() - 1


def kb_and(a: KnownBits, b: KnownBits) -> KnownBits:
    one = a.known_one & b.known_one
    zero = (a.known_zero | b.known_zero) & MASK64
    return KnownBits(one | zero, one)


def kb_or(a: KnownBits, b: KnownBits) -> KnownBits:
    one = (a.known_one | b.known_one) & MASK64
    zero = a.known_zero & b.known_zero
    return KnownBits(one | zero, one)


def kb_xor(a: KnownBits, b: KnownBits) -> KnownBits:
    mask = a.mask & b.mask
    return KnownBits(mask, (a.value ^ b.value) & mask)


def _known_shift(b: KnownBits) -> Optional[int]:
    """The shift amount ``b & 63`` when its low six bits are known."""
    if b.mask & 63 == 63:
        return b.value & 63
    return None


def kb_shl(a: KnownBits, b: KnownBits) -> KnownBits:
    shift = _known_shift(b)
    if shift is None:
        return KB_TOP
    mask = ((a.mask << shift) | ((1 << shift) - 1)) & MASK64
    return KnownBits(mask, (a.value << shift) & mask)


def kb_shr(a: KnownBits, b: KnownBits) -> KnownBits:
    shift = _known_shift(b)
    if shift is None:
        return KB_TOP
    high = ~(MASK64 >> shift) & MASK64
    mask = (a.mask >> shift) | high
    return KnownBits(mask, a.value >> shift)


#: ALU result lattice transfers, keyed by opcode.  ``imm`` operands are
#: folded into a constant second argument by :func:`transfer_known_bits`.
_KB_BINOPS = {
    Op.ADD: kb_add, Op.FADD: kb_add,
    Op.SUB: kb_sub,
    Op.MUL: kb_mul, Op.FMUL: kb_mul,
    Op.AND: kb_and, Op.ANDI: kb_and,
    Op.OR: kb_or,
    Op.XOR: kb_xor, Op.XORI: kb_xor,
    Op.SHL: kb_shl,
    Op.SHR: kb_shr,
}

KnownState = Dict[int, KnownBits]  # reg -> KnownBits (absent = TOP)


def _kb_read(state: KnownState, reg: int) -> KnownBits:
    if reg == ZERO_REG:
        return KB_ZERO
    return state.get(reg, KB_TOP)


def transfer_known_bits(state: KnownState, instr: Instruction) -> KnownState:
    """Apply one instruction to a known-bits state (mutates ``state``)."""
    reg = written_reg(instr)
    if instr.is_call and instr.rd != ZERO_REG:
        # Mirrors the constant solver: link values are treated opaque.
        state.pop(instr.rd, None)
        return state
    if reg is None:
        return state
    op = instr.op
    if op is Op.LD or op is Op.FDIV:
        state.pop(reg, None)
        return state
    a = _kb_read(state, instr.ra)
    if op is Op.LDI:
        result = kb_const(instr.imm)
    elif op in (Op.ADDI, Op.ANDI, Op.XORI):
        fn = kb_add if op is Op.ADDI else _KB_BINOPS[op]
        result = fn(a, kb_const(instr.imm))
    elif op in (Op.CMPLT, Op.CMPEQ):
        b = _kb_read(state, instr.rb)
        if a.is_constant and b.is_constant:
            result = kb_const(alu_result(instr, a.value, b.value))
        else:
            result = KnownBits(MASK64 & ~1, 0)  # result is 0 or 1
    elif op is Op.FMA:
        b = _kb_read(state, instr.rb)
        c = _kb_read(state, instr.rd)
        result = kb_add(kb_mul(a, b), c)
    elif op in _KB_BINOPS:
        result = _KB_BINOPS[op](a, _kb_read(state, instr.rb))
    else:  # pragma: no cover - every reg-writing op is handled above
        result = KB_TOP
    if result.mask:
        state[reg] = result
    else:
        state.pop(reg, None)
    return state


def _join_known(states: List[Optional[KnownState]]) -> KnownState:
    live = [s for s in states if s is not None]
    if not live:
        return {}
    result = dict(live[0])
    for other in live[1:]:
        for reg in list(result):
            merged = result[reg].join(other.get(reg, KB_TOP))
            if merged.mask:
                result[reg] = merged
            else:
                del result[reg]
    return result


def solve_known_bits(cfg: CFG) -> List[Optional[KnownState]]:
    """Per-block IN known-bits states (``None`` for unreached blocks)."""
    n = len(cfg.blocks)
    in_states: List[Optional[KnownState]] = [None] * n
    out_states: List[Optional[KnownState]] = [None] * n
    in_states[cfg.entry] = {}
    worklist = [cfg.entry]
    on_list = [False] * n
    on_list[cfg.entry] = True
    iterations = 0
    limit = 130 * n + 256  # chain height is 64 bits/reg; ample safety net
    while worklist and iterations < limit:
        iterations += 1
        index = worklist.pop(0)
        on_list[index] = False
        block = cfg.blocks[index]
        if index != cfg.entry or block.predecessors:
            preds = [out_states[p] for p in block.predecessors]
            merged = _join_known(preds)
            if index == cfg.entry:
                merged = _join_known([merged, in_states[index] or {}])
            in_states[index] = merged
        state = dict(in_states[index] or {})
        for instr in block.instructions:
            transfer_known_bits(state, instr)
        if out_states[index] != state:
            out_states[index] = state
            for succ in block.successors:
                if not on_list[succ]:
                    worklist.append(succ)
                    on_list[succ] = True
    return in_states


# ---------------------------------------------------------------------------
# Bit liveness (backward demand)
# ---------------------------------------------------------------------------

def _up_to_msb(demand: int) -> int:
    """All bits at or below the highest demanded bit (carry closure)."""
    if demand == 0:
        return 0
    return (1 << demand.bit_length()) - 1


def _above_lsb(demand: int) -> int:
    """All bits at or above the lowest demanded bit."""
    if demand == 0:
        return 0
    return MASK64 & ~((demand & -demand) - 1)


#: Demand on the low half of a partially-stored (STH) value.
STH_VALUE_DEMAND = 0xFFFF_FFFF

#: Demand on the low six (shift-amount) bits of a shift's rb operand.
_SHIFT_AMOUNT_BITS = 0x3F


class _PcContext:
    """Forward facts the backward transfer needs at one pc.

    Only facts about *demanded* operand bits are consulted (see module
    docstring), so storing a handful of masks per pc is enough.
    """

    __slots__ = ("kz_a", "kz_b", "ko_a", "ko_b", "shift")

    def __init__(self, kz_a: int = 0, kz_b: int = 0, ko_a: int = 0,
                 ko_b: int = 0, shift: Optional[int] = None) -> None:
        self.kz_a = kz_a
        self.kz_b = kz_b
        self.ko_a = ko_a
        self.ko_b = ko_b
        self.shift = shift


_EMPTY_CTX = _PcContext()


def _context_for(instr: Instruction, state: KnownState) -> _PcContext:
    op = instr.op
    if op is Op.AND:
        a, b = _kb_read(state, instr.ra), _kb_read(state, instr.rb)
        return _PcContext(kz_a=a.known_zero, kz_b=b.known_zero)
    if op is Op.ANDI:
        a = _kb_read(state, instr.ra)
        return _PcContext(kz_a=a.known_zero)
    if op is Op.OR:
        a, b = _kb_read(state, instr.ra), _kb_read(state, instr.rb)
        return _PcContext(ko_a=a.known_one, ko_b=b.known_one)
    if op in (Op.SHL, Op.SHR):
        return _PcContext(shift=_known_shift(_kb_read(state, instr.rb)))
    if op in (Op.BEQZ, Op.BNEZ):
        a = _kb_read(state, instr.ra)
        return _PcContext(ko_a=a.known_one)
    return _EMPTY_CTX


def demand_transfer(dem: List[int], instr: Instruction,
                    ctx: _PcContext = _EMPTY_CTX) -> None:
    """Backward per-bit demand transfer for one instruction.

    ``dem`` (mutated in place) holds the demand masks *after* the
    instruction on entry and *before* it on exit.
    """
    op = instr.op
    if op in (Op.NOP, Op.MEMBAR, Op.HALT, Op.BR):
        return
    if op is Op.ST:
        dem[instr.ra] |= ALL_BITS  # address: carries cross word boundaries
        dem[instr.rb] |= ALL_BITS  # value crosses the sphere as-is
    elif op is Op.STH:
        dem[instr.ra] |= ALL_BITS
        dem[instr.rb] |= STH_VALUE_DEMAND  # only the low half is stored
    elif op in (Op.BEQZ, Op.BNEZ):
        ko = ctx.ko_a
        if ko:
            # The outcome is pinned by known-one bits.  Demanding one of
            # them keeps it golden, so every other bit of ra is free: no
            # single remaining deviation can zero the register.
            dem[instr.ra] |= ko & -ko
        else:
            dem[instr.ra] |= ALL_BITS
    elif op in (Op.JMP, Op.RET):
        dem[instr.ra] |= ALL_BITS  # target = ra % len mixes every bit
    elif op is Op.CALL:
        if instr.rd != ZERO_REG:
            dem[instr.rd] = 0  # link value is pc+1: no data sources
    else:
        # Register-writing ALU/load ops: kill the dest, then add source
        # demands derived from the killed demand.
        rd = instr.rd
        if rd == ZERO_REG:
            return  # write discarded; sources never observed through it
        d = dem[rd]
        dem[rd] = 0
        if d == 0:
            return
        if op is Op.LD:
            dem[instr.ra] |= ALL_BITS  # any address bit redirects the load
        elif op in (Op.ADD, Op.SUB, Op.FADD):
            up = _up_to_msb(d)
            dem[instr.ra] |= up
            dem[instr.rb] |= up
        elif op is Op.ADDI:
            dem[instr.ra] |= _up_to_msb(d)
        elif op in (Op.MUL, Op.FMUL):
            up = _up_to_msb(d)
            dem[instr.ra] |= up
            dem[instr.rb] |= up
        elif op is Op.FMA:
            up = _up_to_msb(d)
            dem[instr.ra] |= up
            dem[instr.rb] |= up
            dem[rd] |= up  # old rd is the addend
        elif op is Op.FDIV:
            dem[instr.ra] |= ALL_BITS
            dem[instr.rb] |= ALL_BITS
        elif op is Op.AND:
            # Asymmetric masking: a bit of one operand may ride free on
            # the *other* operand's known zero, but when both are known
            # zero one side stays demanded to anchor the golden 0.
            dem[instr.ra] |= d & ((~ctx.kz_b | ctx.kz_a) & MASK64)
            dem[instr.rb] |= d & (~ctx.kz_a & MASK64)
        elif op is Op.ANDI:
            dem[instr.ra] |= d & to_unsigned(instr.imm)
        elif op is Op.OR:
            dem[instr.ra] |= d & ((~ctx.ko_b | ctx.ko_a) & MASK64)
            dem[instr.rb] |= d & (~ctx.ko_a & MASK64)
        elif op is Op.XOR:
            dem[instr.ra] |= d
            dem[instr.rb] |= d
        elif op is Op.XORI:
            dem[instr.ra] |= d
        elif op in (Op.CMPLT, Op.CMPEQ):
            if d & 1:  # result is 0/1; higher demanded bits never change
                dem[instr.ra] |= ALL_BITS
                dem[instr.rb] |= ALL_BITS
        elif op is Op.SHL:
            dem[instr.rb] |= _SHIFT_AMOUNT_BITS
            if ctx.shift is not None:
                dem[instr.ra] |= d >> ctx.shift
            else:
                dem[instr.ra] |= _up_to_msb(d)
        elif op is Op.SHR:
            dem[instr.rb] |= _SHIFT_AMOUNT_BITS
            if ctx.shift is not None:
                dem[instr.ra] |= (d << ctx.shift) & MASK64
            else:
                dem[instr.ra] |= _above_lsb(d)
        elif op is Op.LDI:
            pass  # immediate: no data sources
        else:  # pragma: no cover - exhaustive over reg-writing ops
            dem[instr.ra] |= ALL_BITS
            dem[instr.rb] |= ALL_BITS
    dem[ZERO_REG] = 0  # r0 is hardwired; demands on it are vacuous


@dataclass
class BitLiveness:
    """Per-pc bit-demand and liveness facts for one program.

    ``before[pc]`` / ``after[pc]`` are 64-entry lists: the demand mask
    of each architectural register immediately before / after the
    instruction at ``pc``.  ``live_before[pc]`` and
    ``defined_later[pc]`` are set-level register masks used to name the
    masking class (dead vs overwritten vs no-output).
    """

    cfg: CFG
    before: List[List[int]]
    after: List[List[int]]
    live_before: List[int]
    defined_later: List[int]

    def demand_before(self, pc: int, reg: int) -> int:
        return self.before[pc][reg]

    def demand_after(self, pc: int, reg: int) -> int:
        return self.after[pc][reg]


def _or_lists(target: List[int], source: List[int]) -> bool:
    changed = False
    for index, value in enumerate(source):
        merged = target[index] | value
        if merged != target[index]:
            target[index] = merged
            changed = True
    return changed


def solve_bit_liveness(cfg: CFG,
                       known_in: Optional[List[Optional[KnownState]]] = None
                       ) -> BitLiveness:
    """Solve the backward per-bit demand fixpoint for ``cfg``."""
    if known_in is None:
        known_in = solve_known_bits(cfg)
    n = len(cfg.blocks)
    program_len = len(cfg.program)

    # Per-pc forward contexts (fixed once the forward solution is known).
    contexts: List[_PcContext] = [_EMPTY_CTX] * program_len
    for block in cfg.blocks:
        state = dict(known_in[block.index] or {})
        for pc, instr in zip(block.pcs(), block.instructions):
            contexts[pc] = _context_for(instr, state)
            transfer_known_bits(state, instr)

    # Block-level backward fixpoint on 64-entry demand vectors.
    demand_in: List[List[int]] = [[0] * _REGS for _ in range(n)]
    demand_out: List[List[int]] = [[0] * _REGS for _ in range(n)]
    order = list(reversed(cfg.reachable()))
    changed = True
    while changed:
        changed = False
        for index in order:
            block = cfg.blocks[index]
            out = demand_out[index]
            for succ in block.successors:
                if _or_lists(out, demand_in[succ]):
                    changed = True
            dem = list(out)
            for pc in range(block.end - 1, block.start - 1, -1):
                demand_transfer(dem, cfg.program.instructions[pc],
                                contexts[pc])
            if _or_lists(demand_in[index], dem):
                changed = True

    # Materialize per-pc demand vectors (one backward sweep per block).
    before: List[List[int]] = [[0] * _REGS for _ in range(program_len)]
    after: List[List[int]] = [[0] * _REGS for _ in range(program_len)]
    for block in cfg.blocks:
        dem = [0] * _REGS
        for succ in block.successors:
            _or_lists(dem, demand_in[succ])
        for pc in range(block.end - 1, block.start - 1, -1):
            after[pc] = list(dem)
            demand_transfer(dem, cfg.program.instructions[pc], contexts[pc])
            before[pc] = list(dem)

    live_before, defined_later = _per_pc_liveness(cfg)
    return BitLiveness(cfg=cfg, before=before, after=after,
                       live_before=live_before, defined_later=defined_later)


def _per_pc_liveness(cfg: CFG) -> Tuple[List[int], List[int]]:
    """Per-pc (live-before, defined-at-or-after) register masks."""
    live_in, _ = solve_liveness(cfg)
    n = len(cfg.blocks)
    program_len = len(cfg.program)

    # defined-later: backward union of def masks.
    def_in = [0] * n
    def_out = [0] * n
    order = list(reversed(cfg.reachable()))
    changed = True
    while changed:
        changed = False
        for index in order:
            block = cfg.blocks[index]
            out = 0
            for succ in block.successors:
                out |= def_in[succ]
            new_in = out
            for instr in block.instructions:
                reg = written_reg(instr)
                if reg is not None:
                    new_in |= 1 << reg
            if out != def_out[index] or new_in != def_in[index]:
                def_out[index] = out
                def_in[index] = new_in
                changed = True

    live_before = [0] * program_len
    defined_later = [0] * program_len
    for block in cfg.blocks:
        live = 0
        defined = def_out[block.index]
        for succ in block.successors:
            live |= live_in[succ]
        for pc in range(block.end - 1, block.start - 1, -1):
            instr = cfg.program.instructions[pc]
            reg = written_reg(instr)
            if reg is not None:
                live &= ~(1 << reg)
                defined |= 1 << reg
            for src in instr.source_regs:
                live |= 1 << src
            live &= ~1  # r0 is never meaningfully live
            live_before[pc] = live
            defined_later[pc] = defined
    return live_before, defined_later
