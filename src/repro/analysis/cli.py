"""CLI verbs for the static-analysis subsystem.

``python -m repro analyze`` — verify RISC-R programs (assembly files or
generated workloads) with the dataflow checks of
:mod:`repro.analysis.checks`.

``python -m repro lint`` — run the simulator-invariant linter of
:mod:`repro.analysis.simlint` over the repro source tree.

Exit codes (both verbs): 0 clean, 1 findings at the gating severity
(errors by default; also warnings with ``--strict``), 2 usage error.
"""

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import report as rpt
from repro.analysis.checks import AnalysisReport, verify_program
from repro.analysis.simlint import ENGINE_PREFIXES, lint_package
from repro.isa.profiles import SPEC95_NAMES


# -- analyze ---------------------------------------------------------------

def _build_analyze_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Static dataflow verifier for RISC-R programs")
    parser.add_argument("sources", nargs="*",
                        help="assembly file(s) to verify")
    parser.add_argument("--generated", metavar="PROFILE",
                        help="verify generated workload(s): a profile "
                             "name or 'all-profiles'")
    parser.add_argument("--seeds", type=int, default=1,
                        help="with --generated: verify seeds 0..N-1 "
                             "(default 1)")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule-id prefixes "
                             "(e.g. A1,A5)")
    parser.add_argument("--assume-zeroed", action="store_true",
                        help="treat all registers as zero-initialized "
                             "at entry (machine reset semantics)")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="only print programs with findings")
    return parser


def _gather_programs(args: argparse.Namespace) -> List[object]:
    from repro.isa.assembler import assemble
    from repro.isa.generator import generate_benchmark

    programs = []
    for source in args.sources:
        path = Path(source)
        programs.append(assemble(path.read_text(encoding="utf-8"),
                                 name=path.stem))
    if args.generated:
        names = (SPEC95_NAMES if args.generated == "all-profiles"
                 else [args.generated])
        for name in names:
            if name not in SPEC95_NAMES:
                raise KeyError(
                    f"unknown profile {name!r}; expected one of "
                    f"{', '.join(SPEC95_NAMES)} or 'all-profiles'")
            for seed in range(max(1, args.seeds)):
                # verify=False: we are about to run the full verifier
                # ourselves (with reporting); skip the generator's
                # errors-only gate to avoid doing the work twice.
                programs.append(generate_benchmark(name, seed,
                                                   verify=False))
    return programs


def cmd_analyze(argv: Sequence[str]) -> int:
    args = _build_analyze_parser().parse_args(list(argv))
    if args.rules:
        print(rpt.render_program_rules())
        return 0
    if not args.sources and not args.generated:
        print("error: nothing to analyze (pass assembly files or "
              "--generated PROFILE)", file=sys.stderr)
        return 2
    select = ([part.strip() for part in args.select.split(",")]
              if args.select else None)
    entry_mask = (1 << 64) - 1 if args.assume_zeroed else None

    try:
        programs = _gather_programs(args)
    except (OSError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    reports: List[AnalysisReport] = []
    for program in programs:
        reports.append(verify_program(program,
                                      entry_initialized=entry_mask,
                                      checks=select))

    failed = any(not report.ok(strict=args.strict) for report in reports)
    if args.format == "json":
        program_dicts = [rpt.analysis_to_dict(r) for r in reports]
        flat = [dict(finding, program=prog["program"])
                for prog in program_dicts
                for finding in prog["findings"]]
        payload = rpt.envelope("analyze", not failed, flat,
                               programs=program_dicts, strict=args.strict)
        print(rpt.to_json(payload))
    else:
        shown = 0
        for report in reports:
            if args.quiet and report.ok(strict=args.strict):
                continue
            if shown:
                print()
            print(rpt.render_analysis(report))
            shown += 1
        clean = sum(1 for r in reports if r.ok(strict=args.strict))
        print(f"\nanalyze: {clean}/{len(reports)} program(s) clean"
              + (" (strict)" if args.strict else ""))
    return 1 if failed else 0


# -- lint ------------------------------------------------------------------

def _build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Determinism / sphere-layering / pickle-safety "
                    "linter for the simulator source tree")
    parser.add_argument("paths", nargs="*",
                        help="package roots to lint (default: the "
                             "installed repro package)")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule-id prefixes "
                             "(e.g. S1,S201); a post-filter — every "
                             "engine still runs")
    parser.add_argument("--only", default=None,
                        help="comma-separated rule families to run "
                             "(e.g. S6,S7); engines owning none of "
                             "them are skipped entirely")
    parser.add_argument("--rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def _engines_for(only: Sequence[str]) -> List[str]:
    """Engines owning any requested family (``S6`` or ``S601`` both
    select the flow engine)."""
    return [engine for engine, prefixes in ENGINE_PREFIXES.items()
            if any(ep.startswith(p) or p.startswith(ep)
                   for p in only for ep in prefixes)]


def cmd_lint(argv: Sequence[str]) -> int:
    args = _build_lint_parser().parse_args(list(argv))
    if args.rules:
        print(rpt.render_lint_rules())
        return 0
    select: Optional[List[str]] = (
        [part.strip() for part in args.select.split(",")]
        if args.select else None)
    only: Optional[List[str]] = (
        [part.strip() for part in args.only.split(",")]
        if args.only else None)
    engines: Optional[List[str]] = None
    if only is not None:
        engines = _engines_for(only)
        if not engines:
            print(f"error: --only {args.only!r} names no known rule "
                  f"family (expected prefixes of "
                  f"{', '.join(sorted(p for ps in ENGINE_PREFIXES.values() for p in ps))})",
                  file=sys.stderr)
            return 2
    roots = [Path(p) for p in args.paths] or [None]
    findings = []
    for root in roots:
        if root is not None and not root.exists():
            print(f"error: no such path {root}", file=sys.stderr)
            return 2
        findings.extend(lint_package(root, select=select,
                                     engines=engines))
    if only is not None:
        findings = [f for f in findings
                    if any(f.rule.startswith(p) for p in only)]

    errors = sum(1 for f in findings if f.severity == "error")
    gating = len(findings) if args.strict else errors
    if args.format == "json":
        detail = rpt.lint_to_dict(findings)
        payload = rpt.envelope("lint", not gating, detail.pop("findings"),
                               strict=args.strict, **detail)
        print(rpt.to_json(payload))
    else:
        print(rpt.render_lint(findings))
    return 1 if gating else 0
