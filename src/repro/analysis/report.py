"""Text and JSON reporters for the static-analysis subsystem.

Shared by ``python -m repro analyze`` and ``python -m repro lint``; the
JSON shapes are stable (consumed by CI and by tests' golden files), the
text shapes are for humans.
"""

import json
from typing import Dict, Iterable, List, Sequence

from repro.analysis.checks import (AnalysisReport, PROGRAM_RULES, Severity)
from repro.analysis.registry import LINT_RULES, LintFinding

#: Version of the shared JSON envelope emitted by every analysis tool
#: (``analyze``, ``lint``, ``avf``).  Bumped when the envelope shape
#: changes; tool-specific extras carry their own compatibility story.
SCHEMA_VERSION = 2


def envelope(tool: str, ok: bool, findings: Iterable[Dict[str, object]],
             **extras: object) -> Dict[str, object]:
    """The unified JSON envelope shared by all analysis CLIs.

    Every ``--format json`` reporter emits ``{"version", "tool", "ok",
    "findings": [...]}`` plus tool-specific extras, so CI consumers can
    dispatch on ``tool`` and aggregate ``findings`` uniformly.
    """
    payload: Dict[str, object] = {
        "version": SCHEMA_VERSION,
        "tool": tool,
        "ok": ok,
        "findings": list(findings),
    }
    payload.update(extras)
    return payload


# -- program verifier ------------------------------------------------------

def analysis_to_dict(report: AnalysisReport) -> Dict[str, object]:
    return {
        "program": report.program.name,
        "instructions": len(report.program),
        "blocks": len(report.cfg.blocks),
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "by_rule": report.by_rule(),
        "findings": [
            {"rule": f.rule, "severity": str(f.severity), "pc": f.pc,
             "message": f.message}
            for f in report.findings
        ],
    }


def render_analysis(report: AnalysisReport, verbose: bool = True) -> str:
    lines = [
        f"program {report.program.name!r}: {len(report.program)} "
        f"instructions, {len(report.cfg.blocks)} basic blocks",
    ]
    if not report.findings:
        lines.append("  clean: no findings")
        return "\n".join(lines)
    for rule, count in report.by_rule().items():
        severity, _ = PROGRAM_RULES[rule]
        lines.append(f"  {severity.name:<7s} {rule:<22s} x{count}")
    if verbose:
        lines.append("")
        for finding in report.findings:
            lines.append(f"  {finding}")
    lines.append("")
    lines.append(f"  {len(report.errors)} error(s), "
                 f"{len(report.warnings)} warning(s)")
    return "\n".join(lines)


def render_program_rules() -> str:
    lines = ["program verifier rules:"]
    for rule, (severity, description) in PROGRAM_RULES.items():
        lines.append(f"  {rule:<22s} [{severity.name.lower():<7s}] "
                     f"{description}")
    return "\n".join(lines)


# -- simulator linter ------------------------------------------------------

def lint_to_dict(findings: Sequence[LintFinding]) -> Dict[str, object]:
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    return {
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [
            {"rule": f.rule, "severity": f.severity, "path": f.path,
             "line": f.line, "message": f.message}
            for f in findings
        ],
    }


def render_lint(findings: Sequence[LintFinding]) -> str:
    if not findings:
        return "simlint: clean (no findings)"
    lines: List[str] = [str(f) for f in findings]
    errors = sum(1 for f in findings if f.severity == "error")
    warnings = len(findings) - errors
    lines.append(f"simlint: {errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_lint_rules() -> str:
    lines = ["simulator-invariant rules:"]
    for rule in LINT_RULES.values():
        lines.append(f"  {rule.id:<6s} [{rule.severity:<7s}] "
                     f"({rule.engine}) {rule.summary}")
    lines.append("")
    lines.append("suppress a line with: "
                 "'# simlint: disable=<RULE>[,<RULE>...]'; "
                 "a whole module with: "
                 "'# simlint: disable-file=<RULE>[,<RULE>...]'")
    return "\n".join(lines)


def to_json(payload: Dict[str, object]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True)
