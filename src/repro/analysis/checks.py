"""Static verification checks for RISC-R programs.

Each check certifies one structural property that the sphere of
replication (paper Section 3) or the campaign engine depends on.  The
checks run over the CFG (:mod:`repro.analysis.cfg`) and the dataflow
fixpoints (:mod:`repro.analysis.dataflow`); results are
:class:`Finding` records with a stable rule id, a severity, and the
offending pc.

Severities
----------

``ERROR`` findings are definite defects — a read with *no* reaching
definition, a statically-known store outside the declared data segment,
control running off the end of the program, an unfenced store to a
declared shared segment.  The generator's validity gate refuses to emit
a program with errors.

``WARNING`` findings are possible defects or style hazards — a read
that is uninitialized on *some* path, a dead register write, an
unreachable block, a loop with no monotone induction variable.  They
fail ``analyze --strict`` but not the generator gate (synthetic
workloads legitimately contain, e.g., loops entered mid-body by
indirect jumps).

Program metadata keys the checks understand (all optional):

- ``data_segments``: list of ``[lo, hi)`` byte ranges stores may target.
- ``shared_segments``: list of ``[lo, hi)`` ranges that are
  cross-thread visible; stores into them must be fenced by a MEMBAR
  since the previous store.
- ``jump_table_targets``: exact indirect-jump landing pads (see cfg).
- ``runs_forever``: the program is a by-design non-terminating workload
  (the generator's synthetic benchmarks); disables the unbounded-loop
  and falls-off-end checks.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    R0_ONLY,
    block_def_mask,
    solve_constants,
    solve_initialized,
    solve_liveness,
    solve_store_dirty,
    transfer_constants,
    written_reg,
)
from repro.isa.executor import to_unsigned
from repro.isa.instructions import ZERO_REG, Op
from repro.isa.program import Program


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic, stably ordered by (pc, rule)."""

    rule: str
    severity: Severity
    message: str
    pc: Optional[int] = None

    def sort_key(self) -> Tuple[int, str]:
        return (self.pc if self.pc is not None else -1, self.rule)

    def __str__(self) -> str:
        where = f"pc {self.pc:4d}" if self.pc is not None else "program"
        return f"{self.severity.name:<7s} {self.rule:<18s} {where}: " \
               f"{self.message}"


#: Rule catalogue: id -> (severity, one-line description).
PROGRAM_RULES: Dict[str, Tuple[Severity, str]] = {
    "A1-uninit-read": (
        Severity.ERROR,
        "register read with no reaching definition on any path"),
    "A2-maybe-uninit-read": (
        Severity.WARNING,
        "register read uninitialized on at least one path"),
    "A3-dead-store": (
        Severity.WARNING,
        "register write never observed by any later read"),
    "A4-unreachable-block": (
        Severity.WARNING,
        "basic block unreachable from the program entry"),
    "A5-oob-store": (
        Severity.ERROR,
        "store to a statically-known address outside the declared "
        "data segment"),
    "A6-missing-membar": (
        Severity.ERROR,
        "store to a declared shared segment without a MEMBAR since the "
        "previous store"),
    "A7-unbounded-loop": (
        Severity.WARNING,
        "loop with no monotone induction toward an exit compare"),
    "A8-falls-off-end": (
        Severity.ERROR,
        "control flow can run past the last instruction"),
}


@dataclass
class AnalysisReport:
    """Findings for one program, plus the CFG they were derived from."""

    program: Program
    cfg: CFG
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    def ok(self, strict: bool = False) -> bool:
        if strict:
            return not self.errors and not self.warnings
        return not self.errors

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))


class ProgramVerificationError(ValueError):
    """Raised by the generator gate when a program has ERROR findings."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        lines = "\n".join(str(f) for f in report.errors[:8])
        super().__init__(
            f"program {report.program.name!r} failed static verification "
            f"({len(report.errors)} error(s)):\n{lines}")


# -- metadata helpers ------------------------------------------------------

def _segments(program: Program, key: str) -> Optional[List[Tuple[int, int]]]:
    raw = program.metadata.get(key)
    if raw is None:
        return None
    return [(int(lo), int(hi)) for lo, hi in raw]


def declared_data_segments(program: Program) -> Optional[
        List[Tuple[int, int]]]:
    """Byte ranges stores may legally target, or ``None`` if undeclared.

    Falls back to the span of ``initial_memory`` when the program ships
    initial data but no explicit declaration.
    """
    explicit = _segments(program, "data_segments")
    if explicit is not None:
        return explicit
    if program.initial_memory:
        lo = min(program.initial_memory)
        hi = max(program.initial_memory) + 8
        return [(lo, hi)]
    return None


def _in_segments(addr: int, segments: Sequence[Tuple[int, int]]) -> bool:
    return any(lo <= addr < hi for lo, hi in segments)


# -- individual checks -----------------------------------------------------

def _check_init_reads(cfg: CFG, entry_mask: int,
                      findings: List[Finding]) -> None:
    must_in = solve_initialized(cfg, entry_mask, must=True)
    may_in = solve_initialized(cfg, entry_mask, must=False)
    reported: set = set()
    for index in cfg.reachable():
        block = cfg.blocks[index]
        must = must_in[index]
        may = may_in[index]
        pc = block.start
        for instr in block.instructions:
            for reg in instr.source_regs:
                if reg == ZERO_REG or (pc, reg) in reported:
                    continue
                if not may >> reg & 1:
                    reported.add((pc, reg))
                    findings.append(Finding(
                        "A1-uninit-read", Severity.ERROR,
                        f"r{reg} read by '{instr}' but never written on "
                        f"any path from entry", pc))
                elif not must >> reg & 1:
                    reported.add((pc, reg))
                    findings.append(Finding(
                        "A2-maybe-uninit-read", Severity.WARNING,
                        f"r{reg} read by '{instr}' is uninitialized on "
                        f"at least one path from entry", pc))
            reg = written_reg(instr)
            if reg is not None:
                must |= 1 << reg
                may |= 1 << reg
            pc += 1


def _check_dead_stores(cfg: CFG, findings: List[Finding]) -> None:
    _, live_out = solve_liveness(cfg)
    for index in cfg.reachable():
        block = cfg.blocks[index]
        live = live_out[index]
        for offset in range(len(block.instructions) - 1, -1, -1):
            instr = block.instructions[offset]
            reg = written_reg(instr)
            pc = block.start + offset
            if reg is not None:
                if not live >> reg & 1:
                    findings.append(Finding(
                        "A3-dead-store", Severity.WARNING,
                        f"result of '{instr}' (r{reg}) is overwritten or "
                        f"discarded before any read", pc))
                live &= ~(1 << reg)
            for src in instr.source_regs:
                live |= 1 << src


def _check_unreachable(cfg: CFG, findings: List[Finding]) -> None:
    reachable = set(cfg.reachable())
    for block in cfg.blocks:
        if block.index not in reachable:
            findings.append(Finding(
                "A4-unreachable-block", Severity.WARNING,
                f"instructions [{block.start}, {block.end}) are "
                f"unreachable from the entry", block.start))


def _check_stores(cfg: CFG, findings: List[Finding]) -> None:
    program = cfg.program
    data_segments = declared_data_segments(program)
    shared_segments = _segments(program, "shared_segments")
    if data_segments is None and shared_segments is None:
        return
    const_in = solve_constants(cfg)
    dirty_in = solve_store_dirty(cfg)
    for index in cfg.reachable():
        block = cfg.blocks[index]
        state = dict(const_in[index] or {})
        dirty = dirty_in[index]
        for offset, instr in enumerate(block.instructions):
            pc = block.start + offset
            if instr.is_store:
                base = (0 if instr.ra == ZERO_REG else state.get(instr.ra))
                if base is not None:
                    addr = to_unsigned(base + instr.imm)
                    word = addr & ~7
                    if data_segments is not None and not _in_segments(
                            word, data_segments):
                        findings.append(Finding(
                            "A5-oob-store", Severity.ERROR,
                            f"'{instr}' writes {hex(addr)}, outside the "
                            f"declared data segment(s) "
                            f"{[(hex(lo), hex(hi)) for lo, hi in data_segments]}",
                            pc))
                    if (shared_segments is not None and dirty
                            and _in_segments(word, shared_segments)):
                        findings.append(Finding(
                            "A6-missing-membar", Severity.ERROR,
                            f"'{instr}' publishes to shared {hex(addr)} "
                            f"but a prior store is not fenced by a "
                            f"membar", pc))
                dirty = True
            elif instr.is_membar:
                dirty = False
            transfer_constants(state, instr)


def _check_falls_off_end(cfg: CFG, findings: List[Finding]) -> None:
    if cfg.program.metadata.get("runs_forever"):
        return
    for index in cfg.reachable():
        block = cfg.blocks[index]
        if block.falls_off_end:
            findings.append(Finding(
                "A8-falls-off-end", Severity.ERROR,
                "control can run past the last instruction (no halt, "
                "branch, or return terminates this path)", block.end - 1))
        last = block.instructions[-1]
        if last.is_return and not block.successors:
            findings.append(Finding(
                "A8-falls-off-end", Severity.ERROR,
                f"'{last}' returns but the program contains no call "
                f"sites to return to", block.end - 1))


def _loop_has_induction(cfg: CFG, body: frozenset) -> bool:
    """Does some exit compare of the loop see a monotone counter?

    Accepts the two shapes the ISA can express: a counter stepped by a
    nonzero ``addi`` that is either (a) tested directly by the exit
    branch or (b) compared via ``cmplt``/``cmpeq`` into the branch's
    condition register.
    """
    stepped = set()  # registers r with 'addi r, r, imm!=0' inside the loop
    compares: Dict[int, set] = {}  # cond reg -> source regs of its compare
    for index in body:
        for instr in cfg.blocks[index].instructions:
            if (instr.op is Op.ADDI and instr.rd == instr.ra
                    and instr.imm != 0):
                stepped.add(instr.rd)
            if instr.op in (Op.CMPLT, Op.CMPEQ) and instr.writes_reg:
                compares.setdefault(instr.rd, set()).update(
                    instr.source_regs)
    for index in body:
        block = cfg.blocks[index]
        if not any(s not in body for s in block.successors):
            continue  # not an exiting block
        term = block.terminator
        if term is None or not term.is_conditional:
            continue
        cond = term.ra
        if cond in stepped:
            return True
        if compares.get(cond, set()) & stepped:
            return True
    return False


def _check_loops(cfg: CFG, findings: List[Finding]) -> None:
    if cfg.program.metadata.get("runs_forever"):
        return
    seen_heads = set()
    for tail, head in cfg.back_edges():
        if head in seen_heads:
            continue
        seen_heads.add(head)
        body = cfg.natural_loop(tail, head)
        exits = [b for b in body
                 if any(s not in body for s in cfg.blocks[b].successors)]
        halts = any(cfg.blocks[b].instructions[-1].is_halt
                    for b in body)
        head_pc = cfg.blocks[head].start
        if not exits and not halts:
            findings.append(Finding(
                "A7-unbounded-loop", Severity.WARNING,
                f"loop headed at pc {head_pc} has no exit edge",
                head_pc))
        elif not _loop_has_induction(cfg, body):
            findings.append(Finding(
                "A7-unbounded-loop", Severity.WARNING,
                f"loop headed at pc {head_pc} has no monotone induction "
                f"toward its exit compare", head_pc))


# -- entry point -----------------------------------------------------------

def verify_program(program: Program,
                   entry_initialized: Optional[int] = None,
                   checks: Optional[Sequence[str]] = None) -> AnalysisReport:
    """Run every program check (or the selected rule-id prefixes).

    ``entry_initialized`` is a register bitmask the caller asserts is
    defined at entry (``r0`` always is).  ``checks`` filters by rule-id
    prefix, e.g. ``["A1", "A5"]``.
    """
    cfg = build_cfg(program)
    entry_mask = R0_ONLY | (entry_initialized or 0)
    findings: List[Finding] = []

    def wanted(*rules: str) -> bool:
        if checks is None:
            return True
        return any(rule.startswith(prefix)
                   for rule in rules for prefix in checks)

    if wanted("A1", "A2"):
        _check_init_reads(cfg, entry_mask, findings)
    if wanted("A3"):
        _check_dead_stores(cfg, findings)
    if wanted("A4"):
        _check_unreachable(cfg, findings)
    if wanted("A5", "A6"):
        _check_stores(cfg, findings)
    if wanted("A8"):
        _check_falls_off_end(cfg, findings)
    if wanted("A7"):
        _check_loops(cfg, findings)

    findings.sort(key=Finding.sort_key)
    return AnalysisReport(program=program, cfg=cfg, findings=findings)


def gate_program(program: Program,
                 entry_initialized: Optional[int] = None) -> Program:
    """The generator's mandatory validity gate.

    Verifies ``program`` and raises :class:`ProgramVerificationError` on
    any ERROR-severity finding.  Returns the program unchanged on
    success so it can be used in expression position.
    """
    report = verify_program(program, entry_initialized=entry_initialized)
    if report.errors:
        raise ProgramVerificationError(report)
    return program
