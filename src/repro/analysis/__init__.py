"""repro.analysis — static verification for workloads and simulator.

Two targets (see ``docs/ANALYSIS.md``):

- **Program verifier** (:mod:`~repro.analysis.cfg`,
  :mod:`~repro.analysis.dataflow`, :mod:`~repro.analysis.checks`):
  CFG + dataflow checks over RISC-R :class:`~repro.isa.program.Program`
  objects.  Wired into :mod:`repro.isa.generator` as a mandatory
  validity gate and exposed as ``python -m repro analyze``.
- **Simulator-invariant linter** (:mod:`~repro.analysis.simlint`):
  AST rules enforcing determinism, sphere-of-replication layering, and
  campaign pickle-safety over the repro source tree; exposed as
  ``python -m repro lint``.
"""

from repro.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.analysis.checks import (
    AnalysisReport,
    Finding,
    PROGRAM_RULES,
    ProgramVerificationError,
    Severity,
    gate_program,
    verify_program,
)
from repro.analysis.simlint import (
    LINT_RULES,
    LintFinding,
    LintRule,
    lint_package,
    lint_source,
)

__all__ = [
    "AnalysisReport",
    "BasicBlock",
    "CFG",
    "Finding",
    "LINT_RULES",
    "LintFinding",
    "LintRule",
    "PROGRAM_RULES",
    "ProgramVerificationError",
    "Severity",
    "build_cfg",
    "gate_program",
    "lint_package",
    "lint_source",
    "verify_program",
]
