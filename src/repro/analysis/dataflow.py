"""Dataflow analyses over the RISC-R CFG.

All register-set analyses represent sets as 64-bit integer bitmasks
(bit *i* = register *i*), so the fixpoint loops are a handful of integer
ops per block — cheap enough that the generator can afford to verify
every program it emits (gcc's ~6.5k-instruction program solves in a few
milliseconds).

Four solvers:

- :func:`solve_initialized` — forward reaching-definition existence.
  With ``must=True`` the meet is intersection (bit set ⇔ the register is
  written on *every* path: reads outside this set are *possibly*
  uninitialized).  With ``must=False`` the meet is union (bit set ⇔
  written on *some* path: reads outside this set are *definitely*
  uninitialized — an error, not a warning).
- :func:`solve_liveness` — backward liveness, for dead-store detection.
- :func:`solve_constants` — forward must-constant propagation using the
  executor's own :func:`~repro.isa.executor.alu_result` semantics, so a
  "statically known address" means exactly what the machine computes.
- :func:`solve_store_dirty` — forward "a store has retired since the
  last MEMBAR" predicate, for the publication-ordering check.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG, BasicBlock
from repro.isa.executor import alu_result
from repro.isa.instructions import NUM_ARCH_REGS, ZERO_REG, Instruction, Op

ALL_REGS = (1 << NUM_ARCH_REGS) - 1
R0_ONLY = 1 << ZERO_REG

ConstState = Dict[int, int]  # reg -> known 64-bit value (absent = unknown)


# -- per-instruction facts -------------------------------------------------

def written_reg(instr: Instruction) -> Optional[int]:
    """The architectural register defined by ``instr`` (None if none)."""
    return instr.rd if instr.writes_reg else None


def block_def_mask(block: BasicBlock) -> int:
    mask = 0
    for instr in block.instructions:
        reg = written_reg(instr)
        if reg is not None:
            mask |= 1 << reg
    return mask


def block_use_def(block: BasicBlock) -> Tuple[int, int]:
    """(upward-exposed uses, defs) masks for backward liveness."""
    use = 0
    defs = 0
    for instr in block.instructions:
        for reg in instr.source_regs:
            if not defs >> reg & 1:
                use |= 1 << reg
        reg = written_reg(instr)
        if reg is not None:
            defs |= 1 << reg
    return use, defs


# -- initialization (forward) ----------------------------------------------

def solve_initialized(cfg: CFG, entry_mask: int = R0_ONLY,
                      must: bool = True) -> List[int]:
    """Per-block IN masks of initialized registers.

    ``entry_mask`` names registers the caller treats as defined at
    program entry (always includes the hardwired ``r0``).
    """
    entry_mask |= R0_ONLY
    n = len(cfg.blocks)
    top = ALL_REGS if must else 0
    in_masks = [top] * n
    out_masks = [top] * n
    in_masks[cfg.entry] = entry_mask
    gen = [block_def_mask(b) for b in cfg.blocks]

    worklist = list(cfg.reachable())
    on_list = [False] * n
    for b in worklist:
        on_list[b] = True
    while worklist:
        index = worklist.pop(0)
        on_list[index] = False
        block = cfg.blocks[index]
        if index == cfg.entry:
            in_mask = entry_mask
            # Entry may also have predecessors (loop back to entry).
            for pred in block.predecessors:
                in_mask = (in_mask | out_masks[pred] if not must
                           else in_mask)  # must-init keeps entry facts
        else:
            preds = block.predecessors
            if not preds:
                in_mask = entry_mask if not must else ALL_REGS
            else:
                in_mask = top
                for pred in preds:
                    if must:
                        in_mask &= out_masks[pred]
                    else:
                        in_mask |= out_masks[pred]
        in_masks[index] = in_mask
        new_out = in_mask | gen[index]
        if new_out != out_masks[index]:
            out_masks[index] = new_out
            for succ in block.successors:
                if not on_list[succ]:
                    worklist.append(succ)
                    on_list[succ] = True
    return in_masks


# -- liveness (backward) ---------------------------------------------------

def solve_liveness(cfg: CFG) -> Tuple[List[int], List[int]]:
    """Per-block (live-in, live-out) register masks."""
    n = len(cfg.blocks)
    use_def = [block_use_def(b) for b in cfg.blocks]
    live_in = [0] * n
    live_out = [0] * n
    changed = True
    order = list(reversed(cfg.reachable()))
    while changed:
        changed = False
        for index in order:
            block = cfg.blocks[index]
            out = 0
            for succ in block.successors:
                out |= live_in[succ]
            use, defs = use_def[index]
            new_in = use | (out & ~defs)
            if out != live_out[index] or new_in != live_in[index]:
                live_out[index] = out
                live_in[index] = new_in
                changed = True
    return live_in, live_out


# -- constant propagation (forward) ----------------------------------------

_CONST_KILL_OPS = {Op.LD}  # loads produce runtime values


def transfer_constants(state: ConstState, instr: Instruction) -> ConstState:
    """Apply one instruction to a must-constant state (mutates and
    returns ``state``)."""
    reg = written_reg(instr)
    if instr.is_call and instr.rd != ZERO_REG:
        # Link value is a known constant (pc + 1), but we do not model
        # it; treat as unknown.
        state.pop(instr.rd, None)
        return state
    if reg is None:
        return state
    if instr.op in _CONST_KILL_OPS:
        state.pop(reg, None)
        return state
    sources = instr.source_regs
    values = []
    known = True
    for src in sources:
        if src == ZERO_REG:
            values.append(0)
        elif src in state:
            values.append(state[src])
        else:
            known = False
            break
    if not known:
        state.pop(reg, None)
        return state
    a = values[0] if len(values) > 0 else 0
    b = values[1] if len(values) > 1 else 0
    if instr.op is Op.FMA:
        # source_regs order for FMA is (ra, rb, rd).
        a, b, c = values
    else:
        c = 0
    try:
        state[reg] = alu_result(instr, a, b, c)
    except ValueError:
        state.pop(reg, None)
    return state


def _meet_constants(states: List[Optional[ConstState]]) -> ConstState:
    live = [s for s in states if s is not None]
    if not live:
        return {}
    result = dict(live[0])
    for other in live[1:]:
        for reg in list(result):
            if other.get(reg) != result[reg]:
                del result[reg]
    return result


def solve_constants(cfg: CFG) -> List[Optional[ConstState]]:
    """Per-block IN constant maps (``None`` for blocks never reached)."""
    n = len(cfg.blocks)
    in_states: List[Optional[ConstState]] = [None] * n
    out_states: List[Optional[ConstState]] = [None] * n
    in_states[cfg.entry] = {}
    worklist = [cfg.entry]
    on_list = [False] * n
    on_list[cfg.entry] = True
    iterations = 0
    limit = 64 * n + 256  # safety net: lattice height is bounded anyway
    while worklist and iterations < limit:
        iterations += 1
        index = worklist.pop(0)
        on_list[index] = False
        block = cfg.blocks[index]
        if index != cfg.entry or block.predecessors:
            preds = [out_states[p] for p in block.predecessors]
            merged = _meet_constants(preds)
            if index == cfg.entry:
                # Entry facts survive only if consistent with loop-backs.
                merged = _meet_constants([merged, in_states[index] or {}])
            in_states[index] = merged
        state = dict(in_states[index] or {})
        for instr in block.instructions:
            transfer_constants(state, instr)
        if out_states[index] != state:
            out_states[index] = state
            for succ in block.successors:
                if not on_list[succ]:
                    worklist.append(succ)
                    on_list[succ] = True
    return in_states


# -- membar ordering (forward) ---------------------------------------------

def solve_store_dirty(cfg: CFG) -> List[bool]:
    """Per-block IN flags: may a store precede us without a MEMBAR since?

    Meet is OR (may-analysis): the publication check must fire if *any*
    path reaches a shared store with an unfenced plain store behind it.
    """
    n = len(cfg.blocks)
    in_dirty = [False] * n
    out_dirty = [False] * n

    def transfer(block: BasicBlock, dirty: bool) -> bool:
        for instr in block.instructions:
            if instr.is_membar:
                dirty = False
            elif instr.is_store:
                dirty = True
        return dirty

    changed = True
    order = cfg.reachable()
    while changed:
        changed = False
        for index in order:
            block = cfg.blocks[index]
            dirty = any(out_dirty[p] for p in block.predecessors)
            if index == cfg.entry:
                dirty = dirty or False
            new_out = transfer(block, dirty)
            if dirty != in_dirty[index] or new_out != out_dirty[index]:
                in_dirty[index] = dirty
                out_dirty[index] = new_out
                changed = True
    return in_dirty
