"""Control-flow graph construction for RISC-R programs.

The sphere-of-replication argument (paper Section 3, Figure 1) is
*structural*: a fault is detectable only if every output crossing the
sphere is compared.  The static verifier therefore needs a faithful
control-flow skeleton of the program it is about to certify.  This
module builds that skeleton: basic blocks, edges, and the conservative
treatment of indirect control flow.

Indirect flow
-------------

``JMP`` successors are unknowable in general.  Three sources of truth
are consulted, most precise first:

1. ``program.metadata["jump_table_targets"]`` — the generator records
   the exact landing pads of its jump table (see
   :mod:`repro.isa.generator`), so generated programs get a precise CFG.
2. An explicit ``indirect_targets`` argument from the caller.
3. Otherwise *every block leader* is a may-target (the standard
   conservative assumption used by binary CFG recovery).

``RET`` successors are the instruction after every ``CALL`` (the
return-site set), which is exact for the call/return discipline the
RISC-R generator and assembler emit and conservative otherwise.
"""

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.isa.instructions import Instruction
from repro.isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run ``[start, end)``."""

    index: int
    start: int
    end: int  # exclusive
    instructions: List[Instruction]
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)
    #: True when the block ends by running off the end of the program
    #: (no terminator, no fallthrough target) — a verifier error.
    falls_off_end: bool = False
    #: True when the terminator is an indirect jump resolved
    #: conservatively (all leaders) rather than from a known table.
    imprecise_indirect: bool = False

    @property
    def terminator(self) -> Optional[Instruction]:
        last = self.instructions[-1]
        return last if (last.is_control or last.is_halt) else None

    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasicBlock(#{self.index} [{self.start},{self.end}) "
                f"-> {self.successors})")


@dataclass
class CFG:
    """Control-flow graph: blocks indexed densely, entry first."""

    program: Program
    blocks: List[BasicBlock]
    entry: int
    #: pc -> block index, for every pc in the program.
    block_of_pc: Dict[int, int]
    #: Landing pads assumed for imprecise indirect jumps (empty when all
    #: indirect flow was resolved precisely).
    conservative_indirect_targets: FrozenSet[int] = frozenset()

    def block_at(self, pc: int) -> BasicBlock:
        return self.blocks[self.block_of_pc[pc]]

    def reachable(self) -> List[int]:
        """Block indices reachable from the entry, in discovery order."""
        seen = [False] * len(self.blocks)
        order: List[int] = []
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if seen[index]:
                continue
            seen[index] = True
            order.append(index)
            # Reversed so the leftmost successor is visited first.
            for succ in reversed(self.blocks[index].successors):
                if not seen[succ]:
                    stack.append(succ)
        return order

    def back_edges(self) -> List[Tuple[int, int]]:
        """DFS back edges ``(tail, head)`` over the reachable subgraph.

        A back edge is an edge to a block currently on the DFS stack;
        each corresponds to (at least) one loop with head ``head``.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        color = [WHITE] * len(self.blocks)
        edges: List[Tuple[int, int]] = []

        # Iterative DFS with explicit exit events, so deep CFGs (gcc has
        # ~900 blocks) never hit the recursion limit.
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        color[self.entry] = GREY
        while stack:
            node, child = stack[-1]
            succs = self.blocks[node].successors
            if child < len(succs):
                stack[-1] = (node, child + 1)
                succ = succs[child]
                if color[succ] == GREY:
                    edges.append((node, succ))
                elif color[succ] == WHITE:
                    color[succ] = GREY
                    stack.append((succ, 0))
            else:
                color[node] = BLACK
                stack.pop()
        return edges

    def natural_loop(self, tail: int, head: int) -> FrozenSet[int]:
        """Blocks of the natural loop for back edge ``tail -> head``.

        Standard worklist over predecessors from the tail, stopping at
        the head.  With imprecise indirect edges the result is a
        superset of the true loop, which keeps every client check
        conservative.
        """
        body = {head, tail}
        stack = [tail]
        while stack:
            node = stack.pop()
            for pred in self.blocks[node].predecessors:
                if pred not in body:
                    body.add(pred)
                    stack.append(pred)
        return frozenset(body)


def _leaders(program: Program,
             indirect_targets: Iterable[int]) -> List[int]:
    leaders = {program.entry, 0}
    for pc, instr in enumerate(program.instructions):
        if instr.target is not None:
            leaders.add(instr.target)
        if (instr.is_control or instr.is_halt) and pc + 1 < len(program):
            leaders.add(pc + 1)
    for target in indirect_targets:
        if 0 <= target < len(program):
            leaders.add(target)
    return sorted(leaders)


def resolve_indirect_targets(
        program: Program,
        indirect_targets: Optional[Iterable[int]] = None) -> Tuple[
            FrozenSet[int], bool]:
    """Return ``(targets, precise)`` for the program's indirect jumps."""
    if indirect_targets is not None:
        return frozenset(indirect_targets), True
    meta = program.metadata.get("jump_table_targets")
    if meta is not None:
        return frozenset(int(t) for t in meta), True
    return frozenset(), False


def build_cfg(program: Program,
              indirect_targets: Optional[Iterable[int]] = None) -> CFG:
    """Build the CFG of ``program``.

    ``indirect_targets`` optionally names the exact landing pads of
    ``JMP`` instructions; see the module docstring for the fallback
    chain.
    """
    targets, precise = resolve_indirect_targets(program, indirect_targets)
    n = len(program)

    # Conservative leaders must exist before we can say "all leaders",
    # so compute leaders twice when indirect flow is imprecise: once
    # without indirect targets, then treat that leader set itself as the
    # may-target set.
    leaders = _leaders(program, targets)
    conservative: FrozenSet[int] = frozenset()
    has_indirect = any(i.is_indirect and not i.is_return
                       for i in program.instructions)
    if has_indirect and not precise:
        conservative = frozenset(leaders)

    # Return sites: the instruction after every CALL.
    return_sites = [pc + 1 for pc, instr in enumerate(program.instructions)
                    if instr.is_call and pc + 1 < n]
    for site in return_sites:
        if site not in leaders:
            leaders = sorted(set(leaders) | {site})
            break  # CALL already forces pc+1 to be a leader; belt-and-braces

    blocks: List[BasicBlock] = []
    block_of_pc: Dict[int, int] = {}
    for index, start in enumerate(leaders):
        end = leaders[index + 1] if index + 1 < len(leaders) else n
        block = BasicBlock(index=index, start=start, end=end,
                           instructions=program.instructions[start:end])
        blocks.append(block)
        for pc in range(start, end):
            block_of_pc[pc] = index

    for block in blocks:
        last_pc = block.end - 1
        last = block.instructions[-1]
        succs: List[int] = []
        if last.is_halt:
            pass
        elif last.is_return:
            succs = [block_of_pc[s] for s in return_sites]
        elif last.is_indirect:  # JMP
            pads = targets if precise else conservative
            succs = [block_of_pc[t] for t in sorted(pads)
                     if 0 <= t < n]
            block.imprecise_indirect = not precise
        elif last.is_control:
            if last.target is not None:
                succs.append(block_of_pc[last.target])
            if last.is_conditional and last_pc + 1 < n:
                succs.append(block_of_pc[last_pc + 1])
            if last.is_conditional and last_pc + 1 >= n:
                block.falls_off_end = True
        else:  # plain fallthrough
            if last_pc + 1 < n:
                succs.append(block_of_pc[last_pc + 1])
            else:
                block.falls_off_end = True
        # Dedup while preserving order (conditional branch to pc+1 etc).
        seen = set()
        block.successors = [s for s in succs
                            if not (s in seen or seen.add(s))]

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)

    return CFG(program=program, blocks=blocks,
               entry=block_of_pc[program.entry], block_of_pc=block_of_pc,
               conservative_indirect_targets=conservative)
