"""Shared rule registry for every source-level analysis tool.

One catalogue, one finding type, one suppression grammar.  The
simulator linter (:mod:`repro.analysis.simlint`, families S1–S4), the
lockset analyzer (:mod:`repro.verify.lockset`, family S5), and the
interprocedural flow engine (:mod:`repro.analysis.flow`, families
S6–S7) all register here, so ``repro lint --rules`` and
``repro verify --rules`` render the identical S1–S7 table and every
tool honours the same ``# simlint:`` pragmas.

The suppression table tracks *usage*: a pragma is "used" once it
actually swallows a finding.  Pragmas that suppress nothing are stale
and reported as ``U001`` by :func:`unused_suppressions` — restricted
to the rule families the current run evaluated, so a lockset pragma is
never called stale by a run that did not execute the lockset engine.
"""

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9,\s]+)")
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*simlint:\s*disable-file=([A-Za-z0-9,\s]+)")


@dataclass(frozen=True)
class LintRule:
    id: str
    severity: str  # "error" | "warning"
    engine: str    # "simlint" | "lockset" | "flow"
    summary: str


LINT_RULES: Dict[str, LintRule] = {rule.id: rule for rule in [
    # -- S1 determinism (simlint) -------------------------------------
    LintRule("S101", "error", "simlint",
             "host 'random' used outside repro.util.rng — every "
             "stochastic choice must flow through DeterministicRng"),
    LintRule("S102", "error", "simlint",
             "wall-clock source in a cycle-path layer — simulated time "
             "must be a pure function of the configuration"),
    LintRule("S103", "warning", "simlint",
             "unsorted set consumed in an order-sensitive position — "
             "wrap in sorted() so output is byte-deterministic"),
    LintRule("S104", "warning", "simlint",
             "dict view (.keys()/.values()) formatted into a message "
             "without sorted() — insertion order leaks construction "
             "history into output"),
    # -- S2 sphere-of-replication layering (simlint) ------------------
    LintRule("S201", "error", "simlint",
             "sphere-layering violation: layers inside the sphere of "
             "replication must not import repro.core"),
    LintRule("S202", "error", "simlint",
             "repro.util must be a leaf package (no repro.* imports)"),
    # -- S3 campaign pickle-safety (simlint) --------------------------
    LintRule("S301", "warning", "simlint",
             "lambda handed to a process pool — workers must receive "
             "module-level callables to unpickle"),
    LintRule("S302", "warning", "simlint",
             "wire dataclass is nested or has unstable (set-typed) "
             "fields — it cannot cross the process pool safely"),
    # -- S4 retry hygiene (simlint) -----------------------------------
    LintRule("S401", "warning", "simlint",
             "unbounded retry loop — a while-True except handler that "
             "swallows the error without an attempt cap retries "
             "forever when the fault is permanent"),
    # -- S5 lock discipline (repro.verify.lockset) --------------------
    LintRule("S501", "error", "lockset",
             "shared mutable attribute accessed outside its guarding "
             "lock — declare the guard in the class docstring "
             "('Concurrency:' block) or take the lock"),
    LintRule("S502", "error", "lockset",
             "lock acquisition-order cycle — two code paths take the "
             "same locks in opposite orders and can deadlock"),
    LintRule("S503", "warning", "lockset",
             "blocking call while holding a lock — waits, joins, "
             "sleeps, and socket/queue reads under a lock stall every "
             "other thread contending for it"),
    # -- S6 async safety (repro.analysis.flow) ------------------------
    LintRule("S601", "error", "flow",
             "blocking call transitively reachable from an async def "
             "without an executor hop — one time.sleep or disk read "
             "on the event loop stalls every connection"),
    LintRule("S602", "error", "flow",
             "coroutine called but never awaited or scheduled — the "
             "call builds a coroutine object and discards it; the "
             "body never runs"),
    LintRule("S603", "error", "flow",
             "asyncio loop or primitive touched from code that runs "
             "off-loop (executor / thread target) — loop state is not "
             "thread-safe; use call_soon_threadsafe or a threading "
             "primitive"),
    # -- S7 resource safety (repro.analysis.flow) ---------------------
    LintRule("S701", "warning", "flow",
             "file/socket/tempfile acquired but not released on an "
             "exception path — wrap it in 'with', close it in a "
             "finally, or transfer ownership explicitly"),
    LintRule("S702", "warning", "flow",
             "chaos-instrumented temp-file write without exception-"
             "path cleanup — an injected fault here leaks the temp "
             "file the soak gate hunts for"),
    # -- U0 suppression hygiene (lint orchestration) ------------------
    LintRule("U001", "warning", "simlint",
             "unused suppression — this '# simlint: disable' pragma "
             "suppresses nothing; delete it so audited exceptions "
             "cannot silently rot"),
]}


@dataclass(frozen=True)
class LintFinding:
    rule: str
    path: str  # repro-package-relative, posix separators
    line: int
    message: str

    @property
    def severity(self) -> str:
        return LINT_RULES[self.rule].severity

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} " \
               f"[{self.severity}] {self.message}"


def _parse_rules(group: str) -> Set[str]:
    return {part.strip() for part in group.split(",") if part.strip()}


def _comment_lines(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every ``#`` comment, via the tokenizer.

    Only real comment tokens carry pragmas — a docstring *documenting*
    ``# simlint: disable=…`` must neither suppress anything nor be
    reported stale by U001.  Sources the tokenizer rejects fall back
    to a plain line scan (the AST parse will complain about them
    louder anyway).
    """
    import io
    import tokenize
    try:
        return [(tok.start[0], tok.string)
                for tok in tokenize.generate_tokens(
                    io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return list(enumerate(source.splitlines(), start=1))


@dataclass
class SuppressionTable:
    """Per-line and file-wide ``# simlint:`` pragmas of one module.

    Shared by the simulator linter, the flow engine, and the lockset
    analyzer so every tool honours the same audited exceptions.
    ``active`` marks the consulted pragma as used when (and only when)
    it actually suppresses a finding, which is what U001 audits.
    """

    lines: Dict[int, Set[str]]
    file_wide: Set[str]
    #: disable-file= pragma line per rule (for U001 reporting).
    file_wide_lines: Dict[str, int] = field(default_factory=dict)
    used_lines: Set[Tuple[int, str]] = field(default_factory=set)
    used_file: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionTable":
        lines: Dict[int, Set[str]] = {}
        file_wide: Set[str] = set()
        file_wide_lines: Dict[str, int] = {}
        for line_no, comment in _comment_lines(source):
            match = _SUPPRESS_FILE_RE.search(comment)
            if match:
                for rule in _parse_rules(match.group(1)):
                    file_wide.add(rule)
                    file_wide_lines.setdefault(rule, line_no)
                continue  # disable-file= is not also a line pragma
            match = _SUPPRESS_RE.search(comment)
            if match:
                lines[line_no] = _parse_rules(match.group(1))
        return cls(lines=lines, file_wide=file_wide,
                   file_wide_lines=file_wide_lines)

    def active(self, rule: str, line: int) -> bool:
        """Is ``rule`` suppressed at ``line``?  Marks the pragma used."""
        if rule in self.file_wide:
            self.used_file.add(rule)
            return True
        if rule in self.lines.get(line, ()):
            self.used_lines.add((line, rule))
            return True
        return False


def unused_suppressions(rel_path: str, table: SuppressionTable,
                        evaluated: Iterable[str]) -> List[LintFinding]:
    """U001 findings for pragmas that suppressed nothing.

    ``evaluated`` lists the rule-id prefixes the run actually checked
    (e.g. ``["S1", "S2", "S3", "S4", "S6", "S7"]`` for a full lint);
    a pragma naming a rule outside them is skipped, not judged —
    except ids absent from the catalogue entirely, which can never
    suppress anything and are always stale.
    """
    prefixes = tuple(evaluated)

    def judged(rule: str) -> bool:
        if rule not in LINT_RULES:
            return True  # a typo'd id is stale by construction
        return any(rule.startswith(p) for p in prefixes)

    findings: List[LintFinding] = []
    for line, rules in sorted(table.lines.items()):
        for rule in sorted(rules):
            if not judged(rule) or (line, rule) in table.used_lines:
                continue
            if table.active("U001", line):
                continue
            findings.append(LintFinding(
                "U001", rel_path, line,
                f"suppression 'disable={rule}' matches no finding on "
                f"this line; remove the stale pragma"))
    for rule in sorted(table.file_wide):
        if rule == "U001":
            continue  # a file-wide U001 waiver is itself meta
        if not judged(rule) or rule in table.used_file:
            continue
        line = table.file_wide_lines.get(rule, 1)
        if table.active("U001", line):
            continue
        findings.append(LintFinding(
            "U001", rel_path, line,
            f"suppression 'disable-file={rule}' matches no finding in "
            f"this module; remove the stale pragma"))
    return findings


def rules_for_engine(engine: str) -> List[LintRule]:
    return [rule for rule in LINT_RULES.values() if rule.engine == engine]


def select_findings(findings: Sequence[LintFinding],
                    prefixes: Sequence[str]) -> List[LintFinding]:
    """Findings whose rule id starts with any of ``prefixes``."""
    return [f for f in findings
            if any(f.rule.startswith(p) for p in prefixes)]
