"""AST-based invariant linter for the simulator's own source tree.

The campaign engine (PR 1) replays 100k-injection campaigns from
``(spec, seed)`` alone and the recovery layer (PR 2) compares state
fingerprints byte-for-byte across processes; both silently break if the
simulator picks up a nondeterministic input, leaks the sphere layering,
or ships a wire type the process pool cannot round-trip.  This linter
enforces those invariants *statically*, before a campaign burns CPU on
a bad build.

Rule families (see ``docs/ANALYSIS.md`` for the full catalogue):

- **S1 determinism** — S101 no unseeded ``random`` outside the blessed
  ``repro.util.rng`` wrapper; S102 no wall-clock reads in cycle-path
  layers; S103 no order-sensitive consumption of unsorted sets; S104
  no dict views formatted into messages without ``sorted(...)``.
- **S2 sphere-of-replication layering** — S201 the layers *inside* the
  sphere (pipeline, predictors, memory, isa, util) never import the
  sphere machinery in ``repro.core``; S202 ``repro.util`` is a leaf.
- **S3 campaign pickle-safety** — S301 no lambdas handed to process
  pools; S302 wire dataclasses are module-level with stable,
  deterministic field types.
- **S4 retry hygiene** — S401 no unbounded retry loops: a
  constant-true ``while`` whose exception handler swallows the error
  without tracking an attempt budget spins forever once the fault
  turns out to be permanent (see ``docs/CHAOS.md``).

This module is also the orchestrator: :func:`lint_package` parses each
module once, runs the intraprocedural rules here, hands the same trees
and suppression tables to the interprocedural flow engine
(:mod:`repro.analysis.flow`, families S6–S7), and finally audits the
pragmas themselves (U001, a ``disable=`` that suppressed nothing).
The rule catalogue, finding type, and suppression grammar live in
:mod:`repro.analysis.registry`, shared with the lockset analyzer
(S501–S503 in :mod:`repro.verify.lockset`); the names re-exported here
(``LintRule``, ``LINT_RULES``, ``LintFinding``, ``SuppressionTable``)
are aliases of the registry's.

Suppression: append ``# simlint: disable=S101`` (comma-separate for
several rules) to the offending line, or put
``# simlint: disable-file=S501`` on a line of its own anywhere in the
module to waive rules file-wide (module-level waivers beat a pragma on
every line).  Every suppression is an audited exception, greppable by
rule id — and audited mechanically: one that stops matching any
finding is reported as U001 until it is deleted.

Only the stdlib :mod:`ast` is used; no third-party linter frameworks.
"""

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.registry import (LINT_RULES, LintFinding, LintRule,
                                     SuppressionTable,
                                     unused_suppressions)

__all__ = [
    "LINT_RULES", "LintFinding", "LintRule", "SuppressionTable",
    "lint_package", "lint_source", "package_root", "iter_package_files",
]

#: Engine name -> rule-id prefixes it evaluates (used both to prune a
#: run with ``--only`` and to scope the U001 staleness audit).
ENGINE_PREFIXES: Dict[str, Tuple[str, ...]] = {
    "simlint": ("S1", "S2", "S3", "S4"),
    "flow": ("S6", "S7"),
    "usage": ("U0",),
}

#: Layers that execute inside the simulated machine's cycle loop; these
#: may never observe wall-clock time or host RNG state.
CYCLE_LAYERS = ("core", "pipeline", "predictors", "memory", "isa", "util")

#: Layers inside the sphere of replication (paper Figure 1): structures
#: that are *replicated or compared* must not know about the comparator.
SPHERE_INNER_LAYERS = ("pipeline", "predictors", "memory", "isa", "util")

#: Modules whose dataclasses cross the campaign process pool.
WIRE_MODULE_PATTERNS = (
    re.compile(r"^campaign/"),
    re.compile(r"^core/faults\.py$"),
    re.compile(r"^core/metrics\.py$"),
    re.compile(r"^core/config\.py$"),
)

#: The single module allowed to touch the host ``random`` module.
RNG_HOME = "util/rng.py"

_POOL_METHODS = {"submit", "map", "imap", "imap_unordered", "apply",
                 "apply_async", "starmap", "starmap_async"}
_CLOCK_ATTRS = {"time", "time_ns", "perf_counter", "perf_counter_ns",
                "monotonic", "monotonic_ns", "process_time"}

def _suppressions(source: str) -> Dict[int, Set[str]]:
    """Line-pragma table only (historical helper; the full machinery
    including file-wide waivers is :class:`SuppressionTable`)."""
    return SuppressionTable.from_source(source).lines


def _is_set_expr(node: ast.AST) -> bool:
    """Does ``node`` syntactically produce a set with host-hash order?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_dict_view_expr(node: ast.AST) -> bool:
    """Is ``node`` a bare ``<expr>.keys()`` / ``<expr>.values()`` call?

    Dict views iterate in *insertion* order, which is deterministic for
    one construction path but silently changes whenever the producing
    code is reordered — exactly the instability that must not leak into
    campaign records or error messages.  ``sorted(d.keys())`` is the
    stable form (and, being a ``sorted`` call, is not a view any more,
    so it naturally escapes this predicate).
    """
    return (isinstance(node, ast.Call)
            and not node.args and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("keys", "values"))


def _is_constant_true(node: ast.AST) -> bool:
    """Is ``node`` a test that can never become false (``while True:``)?"""
    return isinstance(node, ast.Constant) and bool(node.value) is True


def _is_benign_retry_call(node: ast.Call) -> bool:
    """Sleeping or logging inside a handler doesn't bound the retry."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr in ("sleep", "debug", "info", "warning",
                             "error", "exception", "critical", "log")
    return isinstance(func, ast.Name) and func.id == "print"


def _handler_swallows(handler: ast.ExceptHandler) -> bool:
    """Does this handler retry without any visible attempt bookkeeping?

    A handler that re-raises, breaks, or returns escapes the loop; one
    that assigns anything (``attempt += 1``, ``pool = rebuild()``) is
    presumed to be tracking a budget the loop head or a later check
    consumes.  Only handlers whose every statement is pure wait-and-spin
    (``pass`` / ``continue`` / ``time.sleep`` / logging) are flagged —
    they turn a permanent fault into an infinite loop.
    """
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if isinstance(value, ast.Constant):  # docstring-style literal
                continue
            if isinstance(value, ast.Call) and _is_benign_retry_call(value):
                continue
        return False
    return True


def _tries_in_loop(body: Sequence[ast.stmt]) -> Iterable[ast.Try]:
    """Try statements lexically inside a loop body, skipping nested
    function/class scopes (their loops are judged on their own)."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Try):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_mentions_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in (
                "set", "Set", "frozenset", "FrozenSet", "MutableSet"):
            return True
        if isinstance(child, ast.Attribute) and child.attr in (
                "Set", "FrozenSet", "MutableSet"):
            return True
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            if re.search(r"\b(Set|FrozenSet|set|frozenset)\b", child.value):
                return True
    return False


class _ModuleLinter(ast.NodeVisitor):
    """Runs every applicable rule over one module's AST."""

    def __init__(self, rel_path: str, source: str,
                 tree: Optional[ast.Module] = None,
                 table: Optional[SuppressionTable] = None) -> None:
        self.rel = rel_path  # e.g. "pipeline/core.py"
        self.layer = rel_path.split("/", 1)[0] if "/" in rel_path else ""
        # A caller orchestrating several engines shares one parse and
        # one suppression table (usage tracking feeds U001) per module.
        self.suppress = table if table is not None \
            else SuppressionTable.from_source(source)
        self.findings: List[LintFinding] = []
        self.is_wire = any(p.search(rel_path) for p in WIRE_MODULE_PATTERNS)
        self._tree = tree if tree is not None \
            else ast.parse(source, filename=rel_path)

    # -- plumbing ----------------------------------------------------
    def run(self) -> List[LintFinding]:
        self.visit(self._tree)
        self._check_wire_dataclasses(self._tree)
        return self.findings

    def report(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.suppress.active(rule, line):  # audited exception
            return
        self.findings.append(LintFinding(rule, self.rel, line, message))

    # -- S1 determinism ----------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._check_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        self._check_import(node, module,
                           names=[a.name for a in node.names])
        self.generic_visit(node)

    def _check_import(self, node: ast.AST, module: str,
                      names: Sequence[str] = ()) -> None:
        root = module.split(".", 1)[0]
        if root == "random" and self.rel != RNG_HOME:
            self.report("S101", node,
                        f"import of 'random' in {self.rel}; use "
                        f"repro.util.rng.DeterministicRng instead")
        if self.layer in CYCLE_LAYERS and root in ("time", "datetime"):
            clocky = (not names
                      or any(n in _CLOCK_ATTRS or n in ("datetime", "date")
                             for n in names))
            if clocky:
                self.report("S102", node,
                            f"'{module}' imported in cycle-path layer "
                            f"'{self.layer}/'")
        if module.startswith("repro"):
            self._check_layering(node, module, names)

    # -- S2 layering -------------------------------------------------
    def _check_layering(self, node: ast.AST, module: str,
                        names: Sequence[str]) -> None:
        if self.layer == "util":
            if module != "repro.util" and not module.startswith("repro.util."):
                self.report("S202", node,
                            f"repro.util imports {module}; util must "
                            f"stay a leaf package")
            return
        if self.layer in SPHERE_INNER_LAYERS:
            if module == "repro.core" or module.startswith("repro.core."):
                self.report("S201", node,
                            f"layer '{self.layer}/' (inside the sphere "
                            f"of replication) imports {module}; the "
                            f"sphere machinery must stay above it")

    # -- S1 determinism: wall clock / unsorted sets --------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self.layer in CYCLE_LAYERS
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"
                and node.attr in _CLOCK_ATTRS):
            self.report("S102", node,
                        f"time.{node.attr}() read in cycle-path layer "
                        f"'{self.layer}/'")
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self.report("S103", node,
                        "iteration over an unsorted set; wrap the "
                        "iterable in sorted()")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # Binding a set *algebra* result (difference/union/...) is the
        # tell-tale "collect then report" idiom whose order leaks into
        # error messages and logs; `x = sorted(set(a) - b)` is the
        # deterministic-by-construction form.  Plain `seen = set()`
        # membership sets are fine and not flagged.
        if isinstance(node.value, ast.BinOp) and _is_set_expr(node.value):
            self.report("S103", node,
                        "binding a raw set-algebra result; bind "
                        "sorted(...) instead so every later consumer "
                        "is order-stable")
        self.generic_visit(node)

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        if _is_set_expr(node.value):
            self.report("S103", node,
                        "formatting an unsorted set into a string; "
                        "wrap it in sorted()")
        if _is_dict_view_expr(node.value):
            self.report("S104", node,
                        "formatting a dict view into a string; wrap "
                        "it in sorted() so the message is stable "
                        "under producer reordering")
        self.generic_visit(node)

    # -- S4 retry hygiene ---------------------------------------------
    def visit_While(self, node: ast.While) -> None:
        if _is_constant_true(node.test):
            for try_node in _tries_in_loop(node.body):
                for handler in try_node.handlers:
                    if _handler_swallows(handler):
                        self.report(
                            "S401", handler,
                            "except handler inside `while True` "
                            "swallows the error and retries without "
                            "an attempt cap; bound it (`for attempt "
                            "in range(n)`) or count failures")
        self.generic_visit(node)

    # -- S3 pickle safety ---------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    self.report("S301", arg,
                                f".{func.attr}(lambda ...) cannot cross "
                                f"a process pool; pass a module-level "
                                f"function")
        if (isinstance(func, ast.Attribute) and func.attr == "join"
                and len(node.args) == 1
                and _is_dict_view_expr(node.args[0])):
            self.report("S104", node,
                        "joining a dict view into a string; wrap it "
                        "in sorted() so the message is stable under "
                        "producer reordering")
        self.generic_visit(node)

    def _check_wire_dataclasses(self, tree: ast.Module) -> None:
        if not self.is_wire:
            return
        top_level = {id(stmt) for stmt in tree.body}
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_decorated(node):
                continue
            if id(node) not in top_level:
                self.report("S302", node,
                            f"dataclass {node.name!r} is not "
                            f"module-level; nested classes cannot be "
                            f"pickled by the campaign pool")
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and \
                        _annotation_mentions_set(stmt.annotation):
                    name = getattr(stmt.target, "id", "?")
                    self.report("S302", stmt,
                                f"field {node.name}.{name} is set-typed; "
                                f"wire formats need deterministic "
                                f"iteration order (use a sorted tuple)")
                if isinstance(stmt, (ast.AnnAssign, ast.Assign)):
                    value = stmt.value
                    if isinstance(value, ast.Call):
                        for kw in value.keywords:
                            if (kw.arg == "default_factory"
                                    and isinstance(kw.value, ast.Name)
                                    and kw.value.id in ("set", "frozenset")):
                                self.report(
                                    "S302", stmt,
                                    f"dataclass {node.name!r} uses "
                                    f"default_factory={kw.value.id}; "
                                    f"wire fields must be order-stable")


# -- public API ------------------------------------------------------------

def lint_source(source: str, rel_path: str) -> List[LintFinding]:
    """Lint one module given its repro-package-relative path."""
    return _ModuleLinter(rel_path, source).run()


def package_root() -> Path:
    """Filesystem directory of the installed ``repro`` package."""
    import repro
    return Path(repro.__file__).resolve().parent


def iter_package_files(root: Optional[Path] = None) -> Iterable[
        Tuple[Path, str]]:
    base = root or package_root()
    for path in sorted(base.rglob("*.py")):
        rel = path.relative_to(base).as_posix()
        yield path, rel


def lint_package(root: Optional[Path] = None,
                 select: Optional[Sequence[str]] = None,
                 engines: Optional[Sequence[str]] = None
                 ) -> List[LintFinding]:
    """Lint every module of the repro package (or another tree).

    Each module is parsed once; the tree and the (usage-tracked)
    suppression table are shared between the intraprocedural rules
    here and the interprocedural flow engine, and the tables are
    audited for stale pragmas (U001) at the end.

    ``engines`` names which passes run (subset of ``"simlint"``,
    ``"flow"``, ``"usage"``; default all — this is ``--only`` in the
    CLI, and it also scopes U001: a pragma for a family no executed
    engine evaluates is not judged).  ``select`` is a post-filter by
    rule-id prefix (``["S1"]`` keeps S101..S104).
    """
    from repro.analysis.flow import analyze_modules

    active = set(engines) if engines is not None else \
        set(ENGINE_PREFIXES)
    base = root or package_root()
    parsed: List[Tuple[str, ast.Module]] = []
    tables: Dict[str, SuppressionTable] = {}
    findings: List[LintFinding] = []
    for path, rel in iter_package_files(base):
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=rel)
        parsed.append((rel, tree))
        tables[rel] = SuppressionTable.from_source(source)
        if "simlint" in active:
            findings.extend(_ModuleLinter(rel, source, tree=tree,
                                          table=tables[rel]).run())
    if "flow" in active:
        findings.extend(analyze_modules(parsed, tables=tables,
                                        package=base.name))
    if "usage" in active:
        evaluated = [prefix for engine in active - {"usage"}
                     for prefix in ENGINE_PREFIXES[engine]]
        for rel, _ in parsed:
            findings.extend(unused_suppressions(rel, tables[rel],
                                                evaluated))
    if select is not None:
        findings = [f for f in findings
                    if any(f.rule.startswith(p) for p in select)]
    findings.sort(key=LintFinding.sort_key)
    return findings
