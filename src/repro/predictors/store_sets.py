"""Store-sets memory dependence predictor (Chrysos & Emer), Table 1: 4K
entries.

Loads that have previously conflicted with an in-flight store are placed
in that store's *store set*; at schedule time a load in a set waits for
the most recent unexecuted store of the same set instead of speculating
past it.  Violations (a load issuing before an older overlapping store)
train the tables.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass
class StoreSetsStats:
    violations: int = 0
    forced_waits: int = 0


class StoreSets:
    def __init__(self, entries: int = 4096, num_threads: int = 4) -> None:
        self.entries = entries
        self.stats = StoreSetsStats()
        # Store Set ID Table: static pc hash -> set id (shared, aliases).
        self._ssit: Dict[int, int] = {}
        self._next_set_id = 1
        # Last Fetched Store Table: (thread, set id) -> store uop sequence.
        self._lfst: Dict[Tuple[int, int], int] = {}

    def _index(self, pc: int) -> int:
        return pc % self.entries

    # -- training ---------------------------------------------------------
    def record_violation(self, load_pc: int, store_pc: int) -> None:
        """A load at ``load_pc`` issued before an older conflicting store."""
        self.stats.violations += 1
        load_index = self._index(load_pc)
        store_index = self._index(store_pc)
        set_id = self._ssit.get(store_index) or self._ssit.get(load_index)
        if set_id is None:
            set_id = self._next_set_id
            self._next_set_id += 1
        self._ssit[load_index] = set_id
        self._ssit[store_index] = set_id

    # -- prediction --------------------------------------------------------
    def store_dispatched(self, thread: int, store_pc: int, seq: int) -> None:
        set_id = self._ssit.get(self._index(store_pc))
        if set_id is not None:
            self._lfst[(thread, set_id)] = seq

    def store_completed(self, thread: int, store_pc: int, seq: int) -> None:
        set_id = self._ssit.get(self._index(store_pc))
        if set_id is not None and self._lfst.get((thread, set_id)) == seq:
            del self._lfst[(thread, set_id)]

    def load_dependence(self, thread: int, load_pc: int) -> Optional[int]:
        """Sequence number of the store this load must wait for, if any."""
        set_id = self._ssit.get(self._index(load_pc))
        if set_id is None:
            return None
        dep = self._lfst.get((thread, set_id))
        if dep is not None:
            self.stats.forced_waits += 1
        return dep
