"""The line predictor that drives instruction fetch.

As in the Alpha 21264/21464 fetch scheme the paper describes (Section
3.1), the *line predictor* — not the branch predictor — produces the
next instruction-cache index each cycle.  The branch/jump/return
predictors only *verify* line predictions a stage later; a disagreement
retrains the line predictor and re-initiates the fetch (a "misfetch").

We model the line-index table as a next-chunk-PC table indexed by a hash
of the current chunk PC.  It is shared by all hardware threads of a
core, which is exactly why the paper's attempt to let the trailing
thread reuse the leading thread's training fails ("excessive aliasing",
Section 4.4): time-shifted redundant threads and unrelated coscheduled
threads retrain each other's entries.
"""

from dataclasses import dataclass
from typing import Dict


@dataclass
class LinePredictorStats:
    predictions: int = 0
    mispredictions: int = 0
    cold_misses: int = 0

    @property
    def misprediction_rate(self) -> float:
        total = self.predictions
        return self.mispredictions / total if total else 0.0


class LinePredictor:
    """Next-chunk predictor, 28K entries as in Table 1."""

    def __init__(self, entries: int = 28 * 1024, chunk_size: int = 8) -> None:
        self.entries = entries
        self.chunk_size = chunk_size
        self.stats = LinePredictorStats()
        self._table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        # Chunk-granular hash; deliberately drops high bits so distinct
        # threads/programs alias, as a real (set, way) index table would.
        return (pc // 1) % self.entries ^ ((pc >> 7) % self.entries)

    def predict(self, pc: int) -> int:
        """Predict the chunk start following the chunk at ``pc``.

        Cold entries fall back to sequential (next chunk), which is what
        a real line predictor's default next-line behaviour gives.
        """
        self.stats.predictions += 1
        index = self._index(pc)
        predicted = self._table.get(index)
        if predicted is None:
            self.stats.cold_misses += 1
            return pc + self.chunk_size
        return predicted

    def verify(self, pc: int, predicted: int, actual: int) -> bool:
        """Check a prediction against the verified next-chunk address.

        Returns True when correct; retrains and counts a misfetch
        otherwise.
        """
        if predicted == actual:
            return True
        self.stats.mispredictions += 1
        self.train(pc, actual)
        return False

    def train(self, pc: int, actual_next: int) -> None:
        self._table[self._index(pc)] = actual_next
