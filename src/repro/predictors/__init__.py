"""Control-flow and memory-dependence predictors of the base machine."""

from repro.predictors.branch_predictor import (BranchPredictorStats,
                                               GshareBranchPredictor,
                                               JumpTargetPredictor,
                                               ReturnAddressStack)
from repro.predictors.line_predictor import LinePredictor, LinePredictorStats
from repro.predictors.store_sets import StoreSets, StoreSetsStats

__all__ = [
    "GshareBranchPredictor",
    "JumpTargetPredictor",
    "ReturnAddressStack",
    "BranchPredictorStats",
    "LinePredictor",
    "LinePredictorStats",
    "StoreSets",
    "StoreSetsStats",
]
