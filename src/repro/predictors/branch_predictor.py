"""Control-flow predictors: gshare, jump target table, return stack.

Table 1 gives the base machine a 208 Kbit branch predictor.  We model a
gshare predictor with 64K 2-bit counters (128 Kbit) plus a 4K-entry
jump-target table and per-thread 32-entry return address stacks —
within the same storage budget.  History registers are per hardware
thread; the counter and target tables are shared (and therefore alias
across threads, as on the real machine).
"""

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class BranchPredictorStats:
    conditional_predictions: int = 0
    conditional_mispredictions: int = 0
    indirect_predictions: int = 0
    indirect_mispredictions: int = 0
    ras_predictions: int = 0
    ras_mispredictions: int = 0

    @property
    def conditional_misprediction_rate(self) -> float:
        total = self.conditional_predictions
        return self.conditional_mispredictions / total if total else 0.0


class GshareBranchPredictor:
    """Tournament conditional predictor (bimodal + gshare + chooser).

    The base machine's 208-Kbit budget (Table 1) is spent EV8-hybrid
    style: 64K gshare 2-bit counters (128 Kbit), 16K per-PC bimodal
    counters (32 Kbit), and a 16K-entry chooser (32 Kbit), leaving room
    for the jump-target table and return stacks.  The bimodal component
    nails strongly biased branches immediately; gshare captures
    correlated/loop behaviour; the chooser arbitrates per PC.
    """

    def __init__(self, counter_bits: int = 16, history_bits: int = 12,
                 num_threads: int = 4) -> None:
        self.size = 1 << counter_bits
        self.bimodal_size = self.size // 4
        self.history_mask = (1 << history_bits) - 1
        self._gshare: Dict[int, int] = {}    # default weakly taken (2)
        self._bimodal: Dict[int, int] = {}   # default weakly taken (2)
        self._chooser: Dict[int, int] = {}   # >=2 favours gshare
        self._history: List[int] = [0] * num_threads
        self.stats = BranchPredictorStats()

    def _gshare_index(self, thread: int, pc: int) -> int:
        return (pc ^ self._history[thread]) % self.size

    def _pc_index(self, pc: int) -> int:
        return pc % self.bimodal_size

    def predict_conditional(self, thread: int, pc: int) -> bool:
        self.stats.conditional_predictions += 1
        gshare = self._gshare.get(self._gshare_index(thread, pc), 2)
        bimodal = self._bimodal.get(self._pc_index(pc), 2)
        chooser = self._chooser.get(self._pc_index(pc), 1)
        counter = gshare if chooser >= 2 else bimodal
        return counter >= 2

    def update_conditional(self, thread: int, pc: int, taken: bool,
                           predicted: Optional[bool] = None) -> None:
        g_index = self._gshare_index(thread, pc)
        p_index = self._pc_index(pc)
        gshare = self._gshare.get(g_index, 2)
        bimodal = self._bimodal.get(p_index, 2)
        gshare_right = (gshare >= 2) == taken
        bimodal_right = (bimodal >= 2) == taken
        if gshare_right != bimodal_right:
            chooser = self._chooser.get(p_index, 1)
            chooser = min(chooser + 1, 3) if gshare_right else max(chooser - 1, 0)
            self._chooser[p_index] = chooser
        self._gshare[g_index] = (min(gshare + 1, 3) if taken
                                 else max(gshare - 1, 0))
        self._bimodal[p_index] = (min(bimodal + 1, 3) if taken
                                  else max(bimodal - 1, 0))
        self._history[thread] = (
            (self._history[thread] << 1) | int(taken)) & self.history_mask
        if predicted is not None and predicted != taken:
            self.stats.conditional_mispredictions += 1

    def snapshot_history(self, thread: int) -> int:
        return self._history[thread]

    def restore_history(self, thread: int, history: int) -> None:
        self._history[thread] = history


class JumpTargetPredictor:
    """PC-indexed last-target table for indirect jumps."""

    def __init__(self, entries: int = 4096) -> None:
        self.entries = entries
        self._table: Dict[int, int] = {}
        self.stats = BranchPredictorStats()

    def predict(self, pc: int) -> Optional[int]:
        self.stats.indirect_predictions += 1
        return self._table.get(pc % self.entries)

    def update(self, pc: int, target: int,
               predicted: Optional[int] = None) -> None:
        self._table[pc % self.entries] = target
        if predicted is None or predicted != target:
            self.stats.indirect_mispredictions += 1


class ReturnAddressStack:
    """Per-thread bounded return stack; overflows discard the oldest."""

    def __init__(self, depth: int = 32) -> None:
        self.depth = depth
        self._stack: List[int] = []
        self.stats = BranchPredictorStats()

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def predict_pop(self) -> Optional[int]:
        self.stats.ras_predictions += 1
        return self._stack.pop() if self._stack else None

    def record_outcome(self, predicted: Optional[int], actual: int) -> None:
        if predicted is None or predicted != actual:
            self.stats.ras_mispredictions += 1

    def clear(self) -> None:
        self._stack.clear()
