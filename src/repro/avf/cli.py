"""CLI verb for the static AVF analyzer.

``python -m repro avf`` — classify every architectural fault site of a
RISC-R program (assembly files or generated workloads) as masked or
ACE, and print per-program AVF estimates.

Exit codes: 0 analysis complete, 2 usage error.  The analyzer itself
never "fails" a program — use ``python -m repro analyze`` for the
verifier gate and ``python -m repro campaign validate-avf`` for the
empirical cross-check.
"""

import argparse
import sys
from pathlib import Path
from typing import List, Sequence

from repro.avf import report as rpt
from repro.avf.analyzer import DEFAULT_STEPS, AVFSummary, analyze_program
from repro.isa.profiles import SPEC95_NAMES, split_workload


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro avf",
        description="Static ACE/AVF vulnerability analyzer for RISC-R "
                    "programs")
    parser.add_argument("sources", nargs="*",
                        help="assembly file(s) to analyze")
    parser.add_argument("--generated", metavar="PROFILE",
                        help="analyze generated workload(s): a profile "
                             "name (optionally name@seed) or "
                             "'all-profiles'")
    parser.add_argument("--seeds", type=int, default=1,
                        help="with --generated: analyze seeds 0..N-1 "
                             "(default 1)")
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS,
                        help="golden-trace step horizon (default "
                             f"{DEFAULT_STEPS}; must match the campaign "
                             "horizon when cross-validating)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    return parser


def _gather_programs(args: argparse.Namespace) -> List[object]:
    from repro.isa.assembler import assemble
    from repro.isa.generator import generate_benchmark

    programs = []
    for source in args.sources:
        path = Path(source)
        programs.append(assemble(path.read_text(encoding="utf-8"),
                                 name=path.stem))
    if args.generated:
        workloads = (SPEC95_NAMES if args.generated == "all-profiles"
                     else [args.generated])
        for workload in workloads:
            name, base_seed = split_workload(workload)
            for offset in range(max(1, args.seeds)):
                programs.append(generate_benchmark(name,
                                                   base_seed + offset))
    return programs


def cmd_avf(argv: Sequence[str]) -> int:
    args = _build_parser().parse_args(list(argv))
    if not args.sources and not args.generated:
        print("error: nothing to analyze (pass assembly files or "
              "--generated PROFILE)", file=sys.stderr)
        return 2
    if args.steps <= 0:
        print("error: --steps must be positive", file=sys.stderr)
        return 2
    try:
        programs = _gather_programs(args)
    except (OSError, KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2

    summaries: List[AVFSummary] = []
    for program in programs:
        summaries.append(analyze_program(program,
                                         steps=args.steps).summary())

    if args.format == "json":
        print(rpt.render_avf_json(summaries))
    else:
        for index, summary in enumerate(summaries):
            if index:
                print()
            print(rpt.render_avf(summary))
        print()
        print(rpt.render_avf_footer(summaries))
    return 0
