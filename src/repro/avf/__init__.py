"""Static ACE/AVF vulnerability analysis for RISC-R programs.

Classifies architectural fault sites (register bits, memory word bits,
instruction destination fields) as masked (un-ACE) or ACE using the
bit-level dataflow framework of :mod:`repro.analysis.valueflow`, and
cross-validates the classification against the fault-injection campaign
oracle (``python -m repro campaign validate-avf``).
"""

from repro.avf.analyzer import (ACE_CLASS, ALL_CLASSES, AVFSummary,
                                ComponentAVF, DEFAULT_STEPS, GoldenTrace,
                                MASKED_CLASSES, ProgramAVF, analyze_program,
                                collect_trace)
from repro.avf.sites import (ARCH_MODELS, SiteUniverse, clear_universe_cache,
                             get_universe)

__all__ = [
    "ACE_CLASS",
    "ALL_CLASSES",
    "ARCH_MODELS",
    "AVFSummary",
    "ComponentAVF",
    "DEFAULT_STEPS",
    "GoldenTrace",
    "MASKED_CLASSES",
    "ProgramAVF",
    "SiteUniverse",
    "analyze_program",
    "clear_universe_cache",
    "collect_trace",
    "get_universe",
]
