"""Text and JSON reporters for the AVF analyzer.

The JSON shape uses the unified analysis envelope
(:func:`repro.analysis.report.envelope`): ``{"version", "tool": "avf",
"ok", "findings": [...]}`` where each finding is one per-program
component estimate, plus a ``programs`` extra with the full per-program
breakdown.
"""

from typing import Dict, List, Sequence

from repro.analysis.report import envelope, to_json
from repro.avf.analyzer import ALL_CLASSES, AVFSummary, MASKED_CLASSES


def summary_findings(summary: AVFSummary) -> List[Dict[str, object]]:
    """Flatten one program's component estimates into envelope findings."""
    findings: List[Dict[str, object]] = []
    for comp in summary.components:
        findings.append({
            "program": summary.program,
            "component": comp.name,
            "avf": comp.avf,
            "total": comp.total,
            "ace": comp.ace_bits,
            "classes": {cls: comp.class_bits.get(cls, 0)
                        for cls in ALL_CLASSES},
        })
    return findings


def avf_payload(summaries: Sequence[AVFSummary]) -> Dict[str, object]:
    findings = [finding for summary in summaries
                for finding in summary_findings(summary)]
    return envelope("avf", True, findings,
                    programs=[summary.to_dict() for summary in summaries])


def render_avf_json(summaries: Sequence[AVFSummary]) -> str:
    return to_json(avf_payload(summaries))


def render_avf(summary: AVFSummary) -> str:
    lines = [
        f"program {summary.program!r}: {summary.steps} golden steps"
        + ("" if summary.halted else " (horizon reached)"),
        f"  {'component':<16s} {'AVF':>7s} {'masked':>7s}  "
        + "  ".join(f"{cls:>12s}" for cls in ALL_CLASSES),
    ]
    for comp in summary.components:
        cells = "  ".join(f"{comp.class_bits.get(cls, 0):>12d}"
                          for cls in ALL_CLASSES)
        lines.append(f"  {comp.name:<16s} {comp.avf:>7.4f} "
                     f"{comp.masked_fraction:>7.4f}  {cells}")
    return "\n".join(lines)


def render_avf_footer(summaries: Sequence[AVFSummary]) -> str:
    """One-line rollup over all analyzed programs."""
    count = len(summaries)
    if not count:
        return "avf: no programs analyzed"
    parts = []
    for name in ("register", "memory", "dest-field"):
        ace = sum(s.component(name).ace_bits for s in summaries)
        total = sum(s.component(name).total for s in summaries)
        parts.append(f"{name} {ace / total if total else 0.0:.4f}")
    masked = ", ".join(MASKED_CLASSES)
    return (f"avf: {count} program(s); mean AVF by component: "
            + ", ".join(parts) + f"\n     (masked classes: {masked})")
