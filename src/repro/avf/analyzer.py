"""Static ACE/AVF classification of architectural fault sites.

Given a RISC-R program, this module classifies every single-bit fault
site — architectural register bits at each dynamic step, memory word
bits between accesses, and bits of an instruction's destination-register
field — as either **un-ACE (masked)** or **ACE** (potentially visible at
the sphere-of-replication outputs, i.e. the store stream).

The analysis composes three ingredients:

- the PR-3 CFG (:mod:`repro.analysis.cfg`),
- the bit-level demand/known-bits fixpoints
  (:mod:`repro.analysis.valueflow`), and
- one golden architectural trace (:class:`GoldenTrace`) that pins which
  pc executes at each step and how each memory word is accessed.

Masking-class taxonomy (``MASKED_CLASSES`` + ``ACE_CLASS``):

``dead``
    The faulted storage is never read again (dead register value, never-
    loaded memory word, destination field of an instruction that ignores
    it).
``overwritten``
    The storage is written before it is next read (register redefined on
    every path; memory word fully overwritten by a store).
``no-output``
    The value *is* read later, but no bit of it can reach a store or a
    control decision (bit demand is empty at the injection point).
``logic-masked``
    Some bits of the value are demanded, but not the faulted one — it is
    logically masked (e.g. by an ``AND`` with known zeros, a shift, or a
    branch whose outcome is pinned by a known-one bit).
``ace``
    Everything else: the bit may propagate to the store stream and is
    counted toward the AVF estimate.

Soundness contract: any site classified into ``MASKED_CLASSES`` must
never be observed DETECTED (or SDC) by the architectural fault-injection
oracle in :mod:`repro.core.faults` over the same step horizon.  A
``latent`` observation is allowed — a flipped bit may stay resident in
dead state.  The campaign's ``validate-avf`` mode cross-checks this
contract empirically.
"""

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.valueflow import BitLiveness, solve_bit_liveness
from repro.isa.executor import FunctionalExecutor, align_word
from repro.isa.instructions import NUM_ARCH_REGS, ZERO_REG, Op
from repro.isa.program import Program
from repro.util.bits import MASK64, to_unsigned

#: Classes whose sites the analyzer guarantees cannot be DETECTED.
MASKED_CLASSES = ("dead", "overwritten", "no-output", "logic-masked")

#: The complement: sites that may reach the sphere outputs.
ACE_CLASS = "ace"

#: All classes, in report order.
ALL_CLASSES = MASKED_CLASSES + (ACE_CLASS,)

#: Default step horizon; matches the campaign spec default.
DEFAULT_STEPS = 800

#: Bits in the rd instruction field (64 architectural registers).
DEST_FIELD_BITS = 6

#: Ops whose rd field is architecturally ignored: flipping it is a no-op.
_RD_IRRELEVANT_OPS = frozenset({
    Op.ST, Op.STH, Op.MEMBAR, Op.NOP, Op.HALT,
    Op.BEQZ, Op.BNEZ, Op.BR, Op.JMP, Op.RET,
})

#: Bit mask of the half-word written by an STH at the given raw address.
_STH_HIGH = 0xFFFF_FFFF_0000_0000
_STH_LOW = 0x0000_0000_FFFF_FFFF


@dataclass
class MemAccess:
    """One dynamic access to an (aligned) memory word."""

    step: int
    kind: str       # "ld" | "st" | "sth"
    pc: int
    rd: int = 0     # destination register of a load
    halfmask: int = 0  # bits written by an sth


@dataclass
class GoldenTrace:
    """Fault-free architectural trace of one program.

    ``pcs[s]`` is the pc executed at step ``s``; faults are injected
    *before* the instruction at that step runs.  ``accesses`` maps each
    aligned word address to its time-ordered access list, and
    ``footprint`` is the sampling universe for memory faults (words in
    the initial image plus every word touched dynamically).
    """

    pcs: List[int]
    pc_counts: Dict[int, int]
    accesses: Dict[int, List[MemAccess]]
    footprint: List[int]
    halted: bool
    crashed: bool = False

    @property
    def steps(self) -> int:
        return len(self.pcs)


def collect_trace(program: Program, max_steps: int = DEFAULT_STEPS
                  ) -> GoldenTrace:
    """Run the functional executor and record pcs and memory accesses."""
    ex = FunctionalExecutor(program)
    pcs: List[int] = []
    accesses: Dict[int, List[MemAccess]] = {}
    crashed = False
    for step in range(max_steps):
        if ex.state.halted:
            break
        pc = ex.state.pc
        halfmask = 0
        if program.in_range(pc):
            instr = program.fetch(pc)
            if instr.op is Op.STH:
                raw = to_unsigned(ex.state.read_reg(instr.ra) + instr.imm)
                halfmask = _STH_HIGH if raw & 4 else _STH_LOW
        try:
            result = ex.step()
        except RuntimeError:
            crashed = True
            break
        pcs.append(result.pc)
        if result.load is not None:
            addr, _ = result.load
            accesses.setdefault(addr, []).append(
                MemAccess(step=step, kind="ld", pc=result.pc,
                          rd=result.instr.rd))
        if result.store is not None:
            addr, _ = result.store
            if result.instr.op is Op.STH:
                accesses.setdefault(addr, []).append(
                    MemAccess(step=step, kind="sth", pc=result.pc,
                              halfmask=halfmask))
            else:
                accesses.setdefault(addr, []).append(
                    MemAccess(step=step, kind="st", pc=result.pc))
    footprint = sorted(set(program.initial_memory) | set(accesses))
    return GoldenTrace(pcs=pcs, pc_counts=dict(Counter(pcs)),
                       accesses=accesses, footprint=footprint,
                       halted=ex.state.halted, crashed=crashed)


@dataclass
class ComponentAVF:
    """Per-component AVF estimate with a class breakdown.

    ``class_bits`` counts bit-units (bit-steps for dynamic components,
    bit-points for the static register view) per masking class.
    """

    name: str
    class_bits: Dict[str, int] = field(default_factory=dict)
    total: int = 0

    def add(self, cls: str, count: int = 1) -> None:
        self.class_bits[cls] = self.class_bits.get(cls, 0) + count
        self.total += count

    @property
    def ace_bits(self) -> int:
        return self.class_bits.get(ACE_CLASS, 0)

    @property
    def avf(self) -> float:
        return self.ace_bits / self.total if self.total else 0.0

    @property
    def masked_fraction(self) -> float:
        return 1.0 - self.avf if self.total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "total": self.total,
            "avf": self.avf,
            "classes": {cls: self.class_bits.get(cls, 0)
                        for cls in ALL_CLASSES},
        }


class ProgramAVF:
    """Static vulnerability analysis of one program.

    Classification entry points mirror the three architectural fault
    models used by the campaign oracle:

    - :meth:`classify_register_site` for ``arch-register`` faults,
    - :meth:`classify_memory_site` for ``arch-memory`` faults,
    - :meth:`classify_dest_field_site` for ``arch-destfield`` faults.
    """

    def __init__(self, program: Program, steps: int = DEFAULT_STEPS,
                 cfg: Optional[CFG] = None,
                 bitlive: Optional[BitLiveness] = None,
                 trace: Optional[GoldenTrace] = None) -> None:
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        self.bitlive = (bitlive if bitlive is not None
                        else solve_bit_liveness(self.cfg))
        self.trace = (trace if trace is not None
                      else collect_trace(program, steps))
        self._reg_counts: Dict[int, Dict[str, int]] = {}
        self._dest_counts: Dict[int, Dict[str, int]] = {}
        self._memory_component: Optional[ComponentAVF] = None

    # -- register sites ---------------------------------------------------

    def classify_register(self, pc: int, reg: int, bit: int) -> str:
        """Class of a flip of ``reg`` bit ``bit`` just before ``pc``."""
        if reg == ZERO_REG:
            return "dead"  # hardwired zero: no architectural storage
        demand = self.bitlive.before[pc][reg]
        if (demand >> bit) & 1:
            return ACE_CLASS
        if demand:
            return "logic-masked"
        if (self.bitlive.live_before[pc] >> reg) & 1:
            return "no-output"
        if (self.bitlive.defined_later[pc] >> reg) & 1:
            return "overwritten"
        return "dead"

    def classify_register_site(self, step: int, reg: int, bit: int) -> str:
        return self.classify_register(self.trace.pcs[step], reg, bit)

    def register_class_counts(self, pc: int) -> Dict[str, int]:
        """Bit counts per class over registers 1..63 at one pc (cached)."""
        cached = self._reg_counts.get(pc)
        if cached is not None:
            return cached
        counts = {cls: 0 for cls in ALL_CLASSES}
        before = self.bitlive.before[pc]
        live = self.bitlive.live_before[pc]
        later = self.bitlive.defined_later[pc]
        for reg in range(1, NUM_ARCH_REGS):
            demand = before[reg]
            if demand:
                ace = demand.bit_count()
                counts[ACE_CLASS] += ace
                counts["logic-masked"] += 64 - ace
            elif (live >> reg) & 1:
                counts["no-output"] += 64
            elif (later >> reg) & 1:
                counts["overwritten"] += 64
            else:
                counts["dead"] += 64
        self._reg_counts[pc] = counts
        return counts

    # -- destination-field sites ------------------------------------------

    def classify_dest_field(self, pc: int, bit: int) -> str:
        """Class of a flip of bit ``bit`` of the rd field at ``pc``."""
        instr = self.program.fetch(pc)
        if instr.op in _RD_IRRELEVANT_OPS:
            return "dead"
        rd = instr.rd
        alt = rd ^ (1 << bit)
        after = self.bitlive.after[pc]
        rd_ok = rd == ZERO_REG or after[rd] == 0
        alt_ok = alt == ZERO_REG or after[alt] == 0
        if rd_ok and alt_ok:
            return "no-output"
        return ACE_CLASS

    def classify_dest_field_site(self, step: int, bit: int) -> str:
        return self.classify_dest_field(self.trace.pcs[step], bit)

    def dest_field_class_counts(self, pc: int) -> Dict[str, int]:
        cached = self._dest_counts.get(pc)
        if cached is not None:
            return cached
        counts = {cls: 0 for cls in ALL_CLASSES}
        for bit in range(DEST_FIELD_BITS):
            counts[self.classify_dest_field(pc, bit)] += 1
        self._dest_counts[pc] = counts
        return counts

    # -- memory sites ------------------------------------------------------

    def classify_memory_site(self, step: int, addr: int, bit: int) -> str:
        """Class of a flip of bit ``bit`` of the word holding ``addr``,
        injected just before ``step``."""
        word = align_word(addr)
        seen_load = False
        for access in self.trace.accesses.get(word, ()):
            if access.step < step:
                continue
            if access.kind == "st":
                return "overwritten"
            if access.kind == "sth":
                if (access.halfmask >> bit) & 1:
                    return "overwritten"
                continue
            # Load: the corrupted bit lands in access.rd.
            if (access.rd != ZERO_REG
                    and (self.bitlive.after[access.pc][access.rd]
                         >> bit) & 1):
                return ACE_CLASS
            seen_load = True
        return "no-output" if seen_load else "dead"

    def _memory_class_bits(self) -> ComponentAVF:
        """Aggregate memory AVF over all (word, bit, step) sites.

        One backward sweep per word over its access list keeps this
        linear in accesses instead of quadratic in steps: between two
        consecutive accesses the class of every bit is constant, so
        intervals are weighted by their step count.
        """
        component = ComponentAVF(name="memory")
        steps = self.trace.steps
        if steps == 0:
            return component
        for word in self.trace.footprint:
            accesses = self.trace.accesses.get(word, [])
            # Class masks for an injection in the interval *after* the
            # access currently being processed (backward walk).
            masks = {"dead": MASK64, "overwritten": 0,
                     "no-output": 0, ACE_CLASS: 0}
            prev_step = steps  # exclusive upper bound of current interval
            for access in reversed(accesses):
                width = prev_step - (access.step + 1)
                if width:
                    for cls, mask in masks.items():
                        if mask:
                            component.add(cls, mask.bit_count() * width)
                prev_step = access.step + 1
                if access.kind == "st":
                    masks = {"dead": 0, "overwritten": MASK64,
                             "no-output": 0, ACE_CLASS: 0}
                elif access.kind == "sth":
                    half = access.halfmask
                    masks = {
                        "dead": masks["dead"] & ~half,
                        "overwritten": (masks["overwritten"] | half)
                        & MASK64,
                        "no-output": masks["no-output"] & ~half,
                        ACE_CLASS: masks[ACE_CLASS] & ~half,
                    }
                else:  # ld
                    if access.rd != ZERO_REG:
                        demand = self.bitlive.after[access.pc][access.rd]
                    else:
                        demand = 0
                    masks = {
                        "dead": 0,
                        "overwritten": masks["overwritten"] & ~demand,
                        "no-output": ((masks["no-output"] | masks["dead"])
                                      & ~demand) & MASK64,
                        ACE_CLASS: (masks[ACE_CLASS] | demand) & MASK64,
                    }
            if prev_step:  # interval before the first access: [0, t0]
                for cls, mask in masks.items():
                    if mask:
                        component.add(cls, mask.bit_count() * prev_step)
        return component

    # -- summaries ---------------------------------------------------------

    def register_component(self, dynamic: bool = True) -> ComponentAVF:
        name = "register" if dynamic else "register-static"
        component = ComponentAVF(name=name)
        if dynamic:
            for pc, count in self.trace.pc_counts.items():
                for cls, bits in self.register_class_counts(pc).items():
                    if bits:
                        component.add(cls, bits * count)
        else:
            for index in self.cfg.reachable():
                for pc in self.cfg.blocks[index].pcs():
                    for cls, bits in self.register_class_counts(pc).items():
                        if bits:
                            component.add(cls, bits)
        return component

    def memory_component(self) -> ComponentAVF:
        if self._memory_component is None:
            self._memory_component = self._memory_class_bits()
        return self._memory_component

    def dest_field_component(self) -> ComponentAVF:
        component = ComponentAVF(name="dest-field")
        for pc, count in self.trace.pc_counts.items():
            for cls, bits in self.dest_field_class_counts(pc).items():
                if bits:
                    component.add(cls, bits * count)
        return component

    def summary(self) -> "AVFSummary":
        return AVFSummary(
            program=self.program.name,
            steps=self.trace.steps,
            halted=self.trace.halted,
            components=[
                self.register_component(dynamic=True),
                self.register_component(dynamic=False),
                self.memory_component(),
                self.dest_field_component(),
            ],
        )


@dataclass
class AVFSummary:
    """Per-program AVF rollup across site components."""

    program: str
    steps: int
    halted: bool
    components: List[ComponentAVF]

    def component(self, name: str) -> ComponentAVF:
        for comp in self.components:
            if comp.name == name:
                return comp
        raise KeyError(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "steps": self.steps,
            "halted": self.halted,
            "components": [comp.to_dict() for comp in self.components],
        }


def analyze_program(program: Program, steps: int = DEFAULT_STEPS
                    ) -> ProgramAVF:
    """Build the full static AVF analysis for ``program``."""
    return ProgramAVF(program, steps=steps)
