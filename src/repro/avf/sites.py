"""Architectural fault-site universes for AVF-guided campaigns.

A :class:`SiteUniverse` enumerates (implicitly) every single-bit fault
site of the three architectural models over one workload and step
horizon, knows how to draw uniform samples from each model's universe,
and classifies any site via the static analyzer.  The campaign sampler
uses it for ``stratified`` and ``guided`` sampling; the report uses its
exact per-class fractions to re-weight guided coverage estimates.

Universes are cached per ``(workload, steps)`` because building one
costs a CFG + two bit-level fixpoints + a golden trace.
"""

from typing import Dict, Optional, Tuple

from repro.avf.analyzer import (ALL_CLASSES, DEST_FIELD_BITS,
                                MASKED_CLASSES, ProgramAVF, analyze_program)
from repro.isa.generator import generate_benchmark
from repro.isa.instructions import NUM_ARCH_REGS
from repro.isa.profiles import split_workload
from repro.util.rng import DeterministicRng

#: Fault models backed by the architectural oracle.
ARCH_MODELS = ("arch-register", "arch-memory", "arch-destfield")


class SiteUniverse:
    """All architectural fault sites of one workload at one horizon.

    ``seed`` is the campaign root seed; it composes with a ``name@N``
    workload suffix exactly the way the campaign worker builds its
    program, so classification and injection always see the same code.
    """

    def __init__(self, workload: str, steps: int, seed: int = 0) -> None:
        self.workload = workload
        self.steps = steps
        self.seed = seed
        name, workload_seed = split_workload(workload)
        self.program = generate_benchmark(name, seed=workload_seed + seed)
        self.avf: ProgramAVF = analyze_program(self.program, steps=steps)
        self._fractions: Dict[str, Dict[str, float]] = {}

    # -- sizes -------------------------------------------------------------

    @property
    def trace_steps(self) -> int:
        return self.avf.trace.steps

    def size(self, model: str) -> int:
        steps = self.trace_steps
        if model == "arch-register":
            return steps * (NUM_ARCH_REGS - 1) * 64
        if model == "arch-memory":
            return steps * len(self.avf.trace.footprint) * 64
        if model == "arch-destfield":
            return steps * DEST_FIELD_BITS
        raise ValueError(f"unknown arch model {model!r}")

    # -- sampling ----------------------------------------------------------

    def sample(self, rng: DeterministicRng, model: str) -> Dict[str, int]:
        """Draw one uniform site from ``model``'s universe."""
        step = rng.randint(0, self.trace_steps - 1)
        if model == "arch-register":
            return {"step": step,
                    "reg": rng.randint(1, NUM_ARCH_REGS - 1),
                    "bit": rng.randint(0, 63)}
        if model == "arch-memory":
            footprint = self.avf.trace.footprint
            word = footprint[rng.randint(0, len(footprint) - 1)]
            return {"step": step, "addr": word, "bit": rng.randint(0, 63)}
        if model == "arch-destfield":
            return {"step": step, "bit": rng.randint(0, DEST_FIELD_BITS - 1)}
        raise ValueError(f"unknown arch model {model!r}")

    # -- classification ----------------------------------------------------

    def classify(self, model: str, site: Dict[str, int]) -> str:
        """Masking class of one sampled site."""
        if model == "arch-register":
            return self.avf.classify_register_site(
                site["step"], site["reg"], site["bit"])
        if model == "arch-memory":
            return self.avf.classify_memory_site(
                site["step"], site["addr"], site["bit"])
        if model == "arch-destfield":
            return self.avf.classify_dest_field_site(site["step"],
                                                     site["bit"])
        raise ValueError(f"unknown arch model {model!r}")

    def is_masked(self, model: str, site: Dict[str, int]) -> bool:
        return self.classify(model, site) in MASKED_CLASSES

    # -- exact class fractions ---------------------------------------------

    def class_fractions(self, model: str) -> Dict[str, float]:
        """Exact fraction of the universe in each masking class."""
        cached = self._fractions.get(model)
        if cached is not None:
            return cached
        if model == "arch-register":
            component = self.avf.register_component(dynamic=True)
        elif model == "arch-memory":
            component = self.avf.memory_component()
        elif model == "arch-destfield":
            component = self.avf.dest_field_component()
        else:
            raise ValueError(f"unknown arch model {model!r}")
        total = component.total or 1
        fractions = {cls: component.class_bits.get(cls, 0) / total
                     for cls in ALL_CLASSES}
        self._fractions[model] = fractions
        return fractions

    def masked_fraction(self, model: str) -> float:
        fractions = self.class_fractions(model)
        return sum(fractions[cls] for cls in MASKED_CLASSES)


_UNIVERSES: Dict[Tuple[str, int, int], SiteUniverse] = {}


def get_universe(workload: str, steps: int, seed: int = 0) -> SiteUniverse:
    """Cached universe for ``(workload, steps, seed)`` (analysis is pure)."""
    key = (workload, steps, seed)
    universe = _UNIVERSES.get(key)
    if universe is None:
        universe = SiteUniverse(workload, steps, seed=seed)
        _UNIVERSES[key] = universe
    return universe


def clear_universe_cache() -> None:
    """Drop cached universes (tests and long-lived workers)."""
    _UNIVERSES.clear()
