"""Job specifications: what the serve layer agrees to compute.

A :class:`JobSpec` is the service-level analogue of a
:class:`~repro.campaign.spec.CampaignSpec`: the *complete* description
of one unit of work, normalized so that two requests asking for the
same computation — regardless of key order, omitted defaults, or list
vs tuple spelling — canonicalize to the same bytes and therefore the
same cache key.  The key (``cache_key``) is the content hash of the
canonical spec, the same scheme the campaign store uses for its
manifest; everything the result cache and the in-flight coalescer do
hangs off that one derivation.

Job types mirror the existing one-shot CLI verbs:

========== ==========================================================
type       params
========== ==========================================================
campaign   any :class:`CampaignSpec` field (kinds, workloads, models,
           injections, seed, instructions, warmup, strike_window,
           config, sampling) plus ``jobs`` / ``task_timeout`` /
           ``chunk_size`` execution knobs
run        kind, benchmarks, instructions, warmup, seed
experiment experiment (a registry id, e.g. ``fig6``), instructions,
           warmup, seed, jobs
avf        workload (``name`` or ``name@seed``), steps
analyze    workload, seed
========== ==========================================================

Execution knobs (``jobs``, ``task_timeout``, ``chunk_size``) *are*
part of the key even though results are provably identical across
them — a conservative choice that keeps the cache sound by
construction rather than by argument.  A campaign's ``jobs`` defaults
to ``None``, meaning "use the daemon's ``--campaign-jobs``"; only an
explicitly submitted value overrides it (and keys differently).
"""

from typing import Dict, List, Optional

from repro.util.canonical import canonical_json, content_hash

#: Bump when the result payload shape of any job type changes in a way
#: that makes previously cached entries wrong to serve.
JOB_FORMAT_VERSION = 1


class JobValidationError(ValueError):
    """The submitted job is malformed (HTTP 400, CLI exit 2)."""


#: Per-type parameter defaults.  Submissions are merged over these so
#: an omitted parameter and an explicitly-defaulted one hash alike.
JOB_TYPE_DEFAULTS: Dict[str, Dict[str, object]] = {
    "campaign": {
        "kinds": ["srt"],
        "workloads": ["gcc"],
        "models": ["transient-result"],
        "injections": 100,
        "seed": 0,
        "instructions": 800,
        "warmup": 2000,
        "strike_window": None,
        "config": None,
        "sampling": "uniform",
        # None = "use the daemon's --campaign-jobs"; an explicit value
        # from the submission wins and becomes part of the cache key.
        "jobs": None,
        "task_timeout": 0,
        "chunk_size": None,
    },
    "run": {
        "kind": "srt",
        "benchmarks": ["gcc"],
        "instructions": 1500,
        "warmup": 12000,
        "seed": 0,
    },
    "experiment": {
        "experiment": None,
        "instructions": 1500,
        "warmup": 12000,
        "seed": 0,
        "jobs": 1,
    },
    "avf": {
        "workload": "gcc",
        "steps": 2000,
    },
    "analyze": {
        "workload": "gcc",
        "seed": 0,
    },
}

#: Machine kinds a `run` job accepts (mirrors ``make_machine``).
RUN_KINDS = ("base", "base2", "srt", "lockstep", "crt")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobValidationError(message)


def _validate_campaign(params: Dict[str, object]) -> None:
    from repro.campaign.spec import CampaignConfigError, CampaignSpec

    fields = {key: value for key, value in params.items()
              if key not in ("jobs", "task_timeout", "chunk_size")}
    try:
        CampaignSpec(**fields).validate()
    except CampaignConfigError as error:
        raise JobValidationError(f"campaign: {error}") from None
    _require(params["jobs"] is None or int(params["jobs"]) >= 1,
             "campaign: jobs must be >= 1")


def _validate_run(params: Dict[str, object]) -> None:
    from repro.isa.profiles import split_workload

    _require(params["kind"] in RUN_KINDS,
             f"run: unknown kind {params['kind']!r}; expected one of "
             f"{list(RUN_KINDS)}")
    benchmarks = params["benchmarks"]
    _require(isinstance(benchmarks, list) and benchmarks,
             "run: benchmarks must be a non-empty list")
    for name in benchmarks:
        try:
            split_workload(name)
        except (KeyError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            raise JobValidationError(f"run: {message}") from None
    _require(int(params["instructions"]) > 0,
             "run: instructions must be positive")
    _require(int(params["warmup"]) >= 0, "run: warmup must be >= 0")


def _validate_experiment(params: Dict[str, object]) -> None:
    from repro.harness.experiments import EXPERIMENT_REGISTRY

    name = params["experiment"]
    _require(name in EXPERIMENT_REGISTRY,
             f"experiment: unknown id {name!r}; expected one of "
             f"{sorted(EXPERIMENT_REGISTRY)}")
    _require(int(params["instructions"]) > 0,
             "experiment: instructions must be positive")
    _require(int(params["warmup"]) >= 0, "experiment: warmup must be >= 0")
    _require(int(params["jobs"]) >= 1, "experiment: jobs must be >= 1")


def _validate_workload(params: Dict[str, object], prefix: str) -> None:
    from repro.isa.profiles import split_workload

    try:
        split_workload(params["workload"])
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else str(error)
        raise JobValidationError(f"{prefix}: {message}") from None


def _validate_avf(params: Dict[str, object]) -> None:
    _validate_workload(params, "avf")
    _require(int(params["steps"]) > 0, "avf: steps must be positive")


def _validate_analyze(params: Dict[str, object]) -> None:
    _validate_workload(params, "analyze")


_VALIDATORS = {
    "campaign": _validate_campaign,
    "run": _validate_run,
    "experiment": _validate_experiment,
    "avf": _validate_avf,
    "analyze": _validate_analyze,
}


class JobSpec:
    """One normalized, validated unit of service work."""

    def __init__(self, job_type: str, params: Dict[str, object]) -> None:
        self.type = job_type
        self.params = params

    @classmethod
    def build(cls, job_type: str,
              params: Optional[Dict[str, object]] = None) -> "JobSpec":
        """Validate and normalize a submission into a JobSpec.

        Raises :class:`JobValidationError` on an unknown type, unknown
        parameter names, or per-type semantic violations.
        """
        if job_type not in JOB_TYPE_DEFAULTS:
            raise JobValidationError(
                f"unknown job type {job_type!r}; expected one of "
                f"{sorted(JOB_TYPE_DEFAULTS)}")
        defaults = JOB_TYPE_DEFAULTS[job_type]
        params = dict(params or {})
        unknown = sorted(set(params) - set(defaults))
        if unknown:
            raise JobValidationError(
                f"{job_type}: unknown parameter(s) {unknown}; expected "
                f"a subset of {sorted(defaults)}")
        merged = dict(defaults)
        merged.update(params)
        merged = _normalize(merged)
        _VALIDATORS[job_type](merged)
        return cls(job_type, merged)

    # -- identity ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format_version": JOB_FORMAT_VERSION,
            "type": self.type,
            "params": self.params,
        }

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def cache_key(self) -> str:
        """Content-addressed identity (result-cache / coalescing key)."""
        return content_hash(self.canonical_json())

    def __repr__(self) -> str:
        return f"JobSpec({self.type!r}, key={self.cache_key()})"


def _normalize(params: Dict[str, object]) -> Dict[str, object]:
    """Collapse equivalent spellings so they hash identically."""
    normalized: Dict[str, object] = {}
    for key, value in params.items():
        if isinstance(value, tuple):
            value = list(value)
        if isinstance(value, list):
            value = [item for item in value]
        normalized[key] = value
    return normalized


def list_job_types() -> List[str]:
    return sorted(JOB_TYPE_DEFAULTS)
