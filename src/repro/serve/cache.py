"""Content-addressed result cache (disk-backed, integrity-sealed).

Entries are keyed by :meth:`JobSpec.cache_key` — the content hash of
the canonical job spec — so the cache *is* the dedupe: two requests
for the same computation land on the same key whether they arrive
concurrently (coalesced upstream by the scheduler), sequentially
(second one served from here), or across daemon restarts (entries are
plain files).

Layout::

    <root>/ab/ab12cd34....json     one JSON entry per key

Each entry stores the spec it answers, the result payload, and a full
SHA-256 seal over the payload's canonical encoding.  ``get`` verifies
the seal and the key binding; an entry that fails either check (torn
write from a pre-atomic crash, bit rot, manual tampering) is **evicted
and reported as a miss** — the caller recomputes, never serves a
corrupt payload.  Writes are write-temp-then-``os.replace`` atomic
with an fsync, mirroring the campaign store's sidecar discipline.

The cache is an accelerator, never a dependency: a write that hits a
disk fault (``ENOSPC``/``EIO``, chaos torn write) is logged and
counted but the job still succeeds — the result simply is not cached —
and a read error degrades to a miss so the scheduler recomputes.
"""

import errno
import json
import logging
import os
import tempfile
import threading
from pathlib import Path
from typing import Dict, Optional

from repro.chaos import chaos_point
from repro.serve.jobs import JobSpec
from repro.util.canonical import canonical_json, payload_digest

run_log = logging.getLogger("repro.run")

ENTRY_VERSION = 1


class ResultCache:
    """On-disk content-addressed store for finished job payloads.

    Called from executor worker threads (scheduler hit-probes and
    post-run seals) concurrently with loop-side ``stats()`` reads, so
    the counters share one lock; entry files themselves need none —
    writes are single-``os.replace`` atomic and reads reseal-verify.

    Concurrency:
        guarded-by _lock: hits, misses, evictions, write_errors
        unguarded-ok: root
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.write_errors = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- read --------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached result for ``key``, or None (miss).

        A corrupt or mismatched entry counts as a miss *and* is evicted
        so the recomputation can overwrite it cleanly.
        """
        path = self.path(key)
        if not path.exists():
            with self._lock:
                self.misses += 1
            return None
        try:
            chaos_point("serve.cache.get", key=key)
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except json.JSONDecodeError:
            self._evict_corrupt(path)
            return None
        except OSError:
            # Transient read fault: degrade to a miss (recompute) but
            # keep the entry — the bytes on disk may be fine.
            with self._lock:
                self.misses += 1
            return None
        if not self._entry_valid(key, entry):
            self._evict_corrupt(path)
            return None
        with self._lock:
            self.hits += 1
        return entry["result"]

    @staticmethod
    def _entry_valid(key: str, entry: object) -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("entry_version") != ENTRY_VERSION:
            return False
        if entry.get("key") != key or "result" not in entry:
            return False
        return entry.get("sha256") == payload_digest(entry["result"])

    def _evict_corrupt(self, path: Path) -> None:
        with self._lock:
            self.misses += 1
            self.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass  # already gone, or unlinkable — recompute regardless

    # -- write -------------------------------------------------------------
    def put(self, spec: JobSpec, result: Dict[str, object]) -> str:
        """Seal and store ``result`` under ``spec``'s key; returns it.

        The cache is best-effort: a disk fault during the write is
        swallowed (counted in ``write_errors``, logged once per
        incident) so the job that computed ``result`` still succeeds.
        A chaos torn write leaves a partial entry at the *final* path —
        deliberately, to exercise the seal check — which the next
        ``get`` detects and evicts.
        """
        key = spec.cache_key()
        try:
            self._put_sealed(key, spec, result)
        except OSError as error:
            with self._lock:
                self.write_errors += 1
            run_log.warning(
                "result cache: write for %s failed (%s); serving "
                "uncached", key[:12], error)
        return key

    def _put_sealed(self, key: str, spec: JobSpec,
                    result: Dict[str, object]) -> None:
        entry = {
            "entry_version": ENTRY_VERSION,
            "key": key,
            "spec": spec.to_dict(),
            "sha256": payload_digest(result),
            "result": result,
        }
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fault = chaos_point("serve.cache.put", key=key)
        if fault is not None and fault.fault == "torn-write":
            # Simulate a pre-atomic-rename crash: a torn entry lands at
            # the final path, for the seal check to catch on read.
            data = (canonical_json(entry) + "\n").encode("utf-8")
            path.write_bytes(data[:fault.tear(len(data))])
            raise OSError(
                errno.EIO, f"chaos[{fault.seq}]: torn cache entry write")
        # Unique temp name per writer: two processes sealing the same
        # key (shared cache dir) must not race on one .tmp file.
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f"{key}.",
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(canonical_json(entry))
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def evict(self, key: str) -> bool:
        """Drop ``key`` if present (admin/endpoint use); True if it was."""
        path = self.path(key)
        if not path.exists():
            return False
        with self._lock:
            self.evictions += 1
        path.unlink()
        return True

    # -- introspection -----------------------------------------------------
    def entry_count(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        entries = self.entry_count()
        with self._lock:
            return {
                "entries": entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "write_errors": self.write_errors,
            }
