"""Executor bridge: serve jobs onto the existing simulation machinery.

No new run paths: a ``campaign`` job drives the PR-1
:class:`~repro.campaign.engine.CampaignEngine` (which in turn owns the
process-pool fan-out and the resumable artifact store), an
``experiment`` job drives the per-figure registry through
:func:`~repro.harness.parallel.run_experiment_parallel`, a ``run`` job
drives :class:`~repro.harness.runner.Runner`, and ``avf`` / ``analyze``
jobs drive the static analyzers.  The bridge's whole job is (a) to map
a normalized :class:`JobSpec` onto those entry points, (b) to thread
the scheduler's cooperative ``cancel`` event into the engine's
``should_stop`` hook so a cancelled or timed-out job stops at the next
chunk boundary, and (c) to return a JSON-able result payload the cache
can seal.

Campaign artifacts live under ``<workdir>/artifacts/<cache-key>/`` —
the same content-addressed key as the result cache — so a job that is
cancelled mid-flight leaves a valid resumable campaign directory, and
resubmitting the identical spec *resumes* instead of restarting.
"""

import threading
from pathlib import Path
from typing import Dict, Optional

from repro.obs import trace as obs_trace
from repro.serve.jobs import JobSpec

#: Keys of an engine summary that are wall-clock measurements or
#: infrastructure-event counters; they are stripped from cached
#: campaign payloads so identical work produces identical (cacheable,
#: byte-comparable) results whether or not chaos faults were ridden
#: out along the way.
_TIMING_KEYS = ("elapsed_s", "tasks_per_s", "infra", "unflushed_batches")


class JobCancelled(Exception):
    """The job observed its cancel event and stopped cooperatively."""


class WorkerPool:
    """Maps job specs onto the blocking simulation entry points.

    One instance per daemon; ``execute`` runs on a scheduler executor
    thread (never the event loop) and may block for the whole job.
    """

    def __init__(self, workdir, campaign_jobs: int = 1) -> None:
        self.workdir = Path(workdir)
        #: Worker processes per campaign job unless the job says otherwise.
        self.campaign_jobs = max(1, int(campaign_jobs))

    def artifact_dir(self, spec: JobSpec) -> Path:
        return self.workdir / "artifacts" / spec.cache_key()

    # -- dispatch ----------------------------------------------------------
    def execute(self, spec: JobSpec,
                cancel: Optional[threading.Event] = None
                ) -> Dict[str, object]:
        """Run one job to completion; raises JobCancelled if stopped."""
        cancel = cancel or threading.Event()
        handler = getattr(self, f"_run_{spec.type}")
        if cancel.is_set():
            raise JobCancelled(f"{spec.type} job cancelled before start")
        # A cancel that lands after the handler's last chunk is too
        # late to save any work — the complete result is returned (and
        # cached) rather than discarded; only the campaign handler can
        # actually stop early, and it raises JobCancelled itself.
        with obs_trace.span(f"pool.{spec.type}",
                            key=spec.cache_key()[:16]):
            return handler(spec, cancel)

    # -- handlers ----------------------------------------------------------
    def _run_campaign(self, spec: JobSpec,
                      cancel: threading.Event) -> Dict[str, object]:
        from repro.campaign.engine import CampaignEngine
        from repro.campaign.report import aggregate
        from repro.campaign.spec import CampaignSpec
        from repro.campaign.store import CampaignStore

        params = spec.params
        fields = {key: value for key, value in params.items()
                  if key not in ("jobs", "task_timeout", "chunk_size")}
        campaign_spec = CampaignSpec(**fields)
        out_dir = self.artifact_dir(spec)
        jobs = (self.campaign_jobs if params["jobs"] is None
                else int(params["jobs"]))
        engine = CampaignEngine(
            campaign_spec, out_dir,
            jobs=jobs,
            task_timeout=int(params["task_timeout"]),
            chunk_size=params["chunk_size"])
        summary = engine.run(should_stop=cancel.is_set)
        if summary.get("cancelled"):
            raise JobCancelled(
                f"campaign stopped at {summary['already_complete'] + summary['executed']}"
                f"/{summary['total_tasks']} injections (artifact resumable "
                f"at {out_dir})")
        for key in _TIMING_KEYS:
            summary.pop(key, None)
        records = CampaignStore(out_dir).records()
        outcomes: Dict[str, Dict[str, object]] = {}
        for (kind, workload), stats in sorted(aggregate(records).items()):
            point, ci_low, ci_high = stats.coverage()
            outcomes[f"{kind}/{workload}"] = {
                "total": stats.total,
                "by_outcome": dict(sorted(stats.outcomes.items())),
                "detected": stats.detected,
                "unmasked": stats.unmasked,
                "coverage": point,
                "coverage_ci": [ci_low, ci_high],
            }
        return {
            "summary": summary,
            "strata": outcomes,
            "artifact_dir": str(out_dir),
        }

    def _run_run(self, spec: JobSpec,
                 cancel: threading.Event) -> Dict[str, object]:
        from repro.harness.runner import Runner

        params = spec.params
        runner = Runner(instructions=int(params["instructions"]),
                        warmup=int(params["warmup"]),
                        seed=int(params["seed"]))
        return runner.run_structured(params["kind"],
                                     list(params["benchmarks"]))

    def _run_experiment(self, spec: JobSpec,
                        cancel: threading.Event) -> Dict[str, object]:
        from repro.harness.experiments import EXPERIMENT_REGISTRY
        from repro.harness.parallel import run_experiment_parallel
        from repro.harness.runner import Runner

        params = spec.params
        driver, _ = EXPERIMENT_REGISTRY[params["experiment"]]
        runner_kwargs = {
            "instructions": int(params["instructions"]),
            "warmup": int(params["warmup"]),
            "seed": int(params["seed"]),
        }
        jobs = int(params["jobs"])
        if jobs > 1:
            result = run_experiment_parallel(driver.__name__,
                                             runner_kwargs, jobs=jobs)
        else:
            result = driver(Runner(**runner_kwargs))
        return result.to_dict()

    def _run_avf(self, spec: JobSpec,
                 cancel: threading.Event) -> Dict[str, object]:
        from repro.avf.analyzer import analyze_program
        from repro.avf.report import avf_payload
        from repro.isa.generator import generate_benchmark
        from repro.isa.profiles import split_workload

        params = spec.params
        name, seed = split_workload(params["workload"])
        program = generate_benchmark(name, seed=seed)
        summary = analyze_program(program, steps=int(params["steps"]))
        return avf_payload([summary])

    def _run_analyze(self, spec: JobSpec,
                     cancel: threading.Event) -> Dict[str, object]:
        from repro.analysis.checks import verify_program
        from repro.analysis.report import analysis_to_dict
        from repro.isa.generator import generate_benchmark
        from repro.isa.profiles import split_workload

        params = spec.params
        name, base_seed = split_workload(params["workload"])
        program = generate_benchmark(name,
                                     seed=base_seed + int(params["seed"]))
        return analysis_to_dict(verify_program(program))
