"""Bounded fair-share job scheduler with admission control.

Single-threaded asyncio core: ``submit``/``cancel``/status reads all
run on the event loop, so there are no locks; only the blocking
simulation work leaves the loop, onto a small
:class:`~concurrent.futures.ThreadPoolExecutor` (whose campaign jobs
then fan out further across the engine's own process pool).

Lifecycle::

                      submit
                        │
          cache hit ────┼──── identical job in flight
          (DONE now)    │      (coalesce onto primary)
                        ▼
    429 QueueFull ◄── QUEUED ──cancel──► CANCELLED
                        │
                  fair-share pick
                        ▼
                     RUNNING ──cancel/timeout──► CANCELLED / FAILED
                        │
                        ▼
                   DONE (sealed into the result cache)

Admission control: the queue is bounded; a submission that finds it
full raises :class:`QueueFull` carrying a ``retry_after`` estimate
derived from observed job durations — the API layer turns that into
HTTP 429 + ``Retry-After``.

Fair share: among queued jobs the dispatcher picks by (priority,
fewest jobs already served for that client, arrival order), so one
chatty client cannot starve the rest no matter how fast it submits.

Cancellation is cooperative: a RUNNING job's ``threading.Event`` is
observed by the campaign engine between chunk appends (and by every
handler before/after its blocking section), so cancelled work stops at
a chunk boundary and leaves a resumable artifact — never a torn one.
``drain`` (SIGTERM) is cancel-everything + wait: queued jobs are
cancelled outright, running jobs get their events set, and the call
returns only when every in-flight chunk has been flushed.
"""

import asyncio
import logging
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from typing import Deque, Dict, List, Optional

from repro.chaos import chaos_point_async
from repro.core.metrics import ServiceCounters
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec
from repro.serve.pool import JobCancelled

run_log = logging.getLogger("repro.run")

# Job states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Fallback Retry-After (seconds) before any job duration is observed.
DEFAULT_RETRY_AFTER = 2

#: Observed-duration window for the Retry-After estimate.
_DURATION_WINDOW = 32

#: Per-job infrastructure retry budget: a job whose execution dies on
#: an infrastructure error (disk fault, broken executor) is requeued
#: this many times before settling FAILED with its failure chain.
DEFAULT_INFRA_RETRIES = 2

#: Exception families that indicate the infrastructure (not the job
#: spec) failed, and so are worth a bounded requeue.
INFRA_ERRORS = (OSError, BrokenExecutor)


class QueueFull(Exception):
    """Admission control refused the job (HTTP 429)."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(
            f"job queue is full; retry after ~{retry_after}s")
        self.retry_after = retry_after


class Draining(Exception):
    """The server is shutting down and accepts no new work (HTTP 503)."""


class Job:
    """One submission's full lifecycle record.

    Every lifecycle field is written by the scheduler on the event
    loop; the one deliberate exception is ``cancel_event``, a
    ``threading.Event`` whose *set* side stays on the loop while the
    executor thread polls ``is_set()`` between chunk boundaries —
    Event is internally locked, so it needs no guard here.
    ``done_event`` is an ``asyncio.Event``: strictly loop-side.

    Concurrency:
        loop-confined: state, cache_hit, coalesced_with, result, error
        loop-confined: started_at, finished_at, infra_retries
        loop-confined: failure_chain, followers, superseded_by
        loop-confined: done_event
        unguarded-ok: job_id, spec, key, client, priority, seq
        unguarded-ok: submitted_at, cancel_event
    """

    def __init__(self, job_id: str, spec: JobSpec, client: str,
                 priority: int, seq: int) -> None:
        self.job_id = job_id
        self.spec = spec
        self.key = spec.cache_key()
        self.client = client
        self.priority = priority
        self.seq = seq
        self.state = QUEUED
        self.cache_hit = False
        self.coalesced_with: Optional[str] = None
        self.result: Optional[Dict[str, object]] = None
        self.error: Optional[str] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.cancel_event = threading.Event()
        self.done_event = asyncio.Event()
        #: Infrastructure retries consumed, and what each one survived.
        self.infra_retries = 0
        self.failure_chain: List[str] = []
        #: Jobs coalesced onto this one (primary only).
        self.followers: List["Job"] = []
        #: Set when a cancelled primary hands its computation to a
        #: promoted follower; the runner task follows this chain to
        #: settle whichever job currently owns the computation.
        self.superseded_by: Optional["Job"] = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    def to_dict(self, include_result: bool = False) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "id": self.job_id,
            "type": self.spec.type,
            "key": self.key,
            "state": self.state,
            "client": self.client,
            "priority": self.priority,
            "cache_hit": self.cache_hit,
            "coalesced_with": self.coalesced_with,
            "error": self.error,
            "submitted_at": round(self.submitted_at, 3),
            "started_at": (round(self.started_at, 3)
                           if self.started_at else None),
            "finished_at": (round(self.finished_at, 3)
                            if self.finished_at else None),
        }
        if self.failure_chain:
            payload["infra_retries"] = self.infra_retries
            payload["failure_chain"] = list(self.failure_chain)
        if include_result:
            payload["result"] = self.result
        return payload


class Scheduler:
    """Owns the queue, the running set, the counters, and the cache.

    Lock-free by construction: all mutable scheduler state is
    loop-confined — touched only from coroutines and callbacks running
    on the event loop.  The only work that leaves the loop is
    :meth:`_execute_job` (handed to the thread-pool executor), which
    touches the job's unguarded-ok fields and the thread-safe pool but
    no scheduler state.  The result cache is thread-safe internally
    (it is called from worker threads in other deployments), the
    counters group applies and snapshots its fields under its own lock
    (so ``/metrics`` reads one consistent picture from any thread),
    and the remaining references are immutable after ``__init__``.

    Concurrency:
        loop-confined: jobs, _queued, _running, _by_key, _served
        loop-confined: _durations, _seq, _wake, _draining
        loop-confined: _dispatcher, _executor, infra_requeues
        unguarded-ok: pool, cache, max_queue, max_running
        unguarded-ok: job_timeout, infra_retry_budget, counters
    """

    def __init__(self, pool, cache: ResultCache, max_queue: int = 16,
                 max_running: int = 2, job_timeout: float = 0.0,
                 infra_retries: int = DEFAULT_INFRA_RETRIES) -> None:
        self.pool = pool
        self.cache = cache
        self.max_queue = max(1, int(max_queue))
        self.max_running = max(1, int(max_running))
        self.job_timeout = max(0.0, float(job_timeout))
        self.infra_retry_budget = max(0, int(infra_retries))
        self.infra_requeues = 0  # total across all jobs, for /metrics
        self.counters = ServiceCounters()
        self.jobs: Dict[str, Job] = {}
        self._queued: List[Job] = []
        self._running: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}  # in-flight primary per key
        self._served: Dict[str, int] = {}  # fair-share history per client
        self._durations: Deque[float] = deque(maxlen=_DURATION_WINDOW)
        self._seq = 0
        self._wake = asyncio.Event()
        self._draining = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._executor = None  # created lazily, on the loop thread

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the dispatcher task (call from inside the loop)."""
        from concurrent.futures import ThreadPoolExecutor
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_running,
                thread_name_prefix="repro-serve")
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Stop admissions, cancel everything, wait for clean flushes."""
        self._draining = True
        # _cancel_queued promotes a coalesced follower back onto the
        # live queue, so a snapshot iteration would leave promoted jobs
        # queued (or worse, dispatched with a cancel event nobody sets,
        # deadlocking executor.shutdown below).  Drain until empty.
        while self._queued:
            self._cancel_queued(self._queued[0])
        waiters = []
        for job in list(self._running.values()):
            job.cancel_event.set()
            waiters.append(asyncio.create_task(job.done_event.wait()))
        if waiters:
            await asyncio.gather(*waiters)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            self._dispatcher = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission --------------------------------------------------------
    def submit(self, spec: JobSpec, client: str = "anon",
               priority: int = 0) -> Job:
        """Admit one job: cache hit, coalesce, enqueue, or refuse.

        Synchronous entry (tests, tools): the cache probe reads the
        disk on the calling thread.  Event-loop callers must use
        :meth:`submit_async`, which probes off-loop.
        """
        if self._draining:
            raise Draining("server is draining; no new jobs accepted")
        cached = self.cache.get(spec.cache_key())
        return self._admit(spec, client, priority, cached)

    async def submit_async(self, spec: JobSpec, client: str = "anon",
                           priority: int = 0) -> Job:
        """:meth:`submit` for coroutines: the cache probe (a disk read
        and JSON parse) runs on a worker thread so the event loop
        keeps serving other connections while it seeks."""
        if self._draining:
            raise Draining("server is draining; no new jobs accepted")
        loop = asyncio.get_running_loop()
        cached = await loop.run_in_executor(None, self.cache.get,
                                            spec.cache_key())
        if self._draining:
            # Drain began while the probe was off-loop.
            raise Draining("server is draining; no new jobs accepted")
        return self._admit(spec, client, priority, cached)

    def _admit(self, spec: JobSpec, client: str, priority: int,
               cached) -> Job:
        """Admission decision, given the already-probed cache value."""
        self._seq += 1
        job = Job(f"j{self._seq:06d}", spec, client, int(priority),
                  self._seq)
        if cached is not None:
            self.jobs[job.job_id] = job
            self.counters.add(accepted=1, cache_hits=1)
            self._finish(job, DONE, result=cached, cache_hit=True)
            return job
        primary = self._by_key.get(job.key)
        if primary is not None:
            self.jobs[job.job_id] = job
            job.coalesced_with = primary.job_id
            job.state = primary.state  # queued or running, mirrors primary
            primary.followers.append(job)
            self.counters.add(accepted=1, coalesced=1)
            return job
        if len(self._queued) >= self.max_queue:
            self.counters.add(rejected=1)
            raise QueueFull(self.estimate_retry_after())
        self.jobs[job.job_id] = job
        self.counters.add(accepted=1)
        self._queued.append(job)
        self._by_key[job.key] = job
        self._wake.set()
        return job

    def estimate_retry_after(self) -> int:
        """Seconds until a queue slot plausibly frees up."""
        if not self._durations:
            return DEFAULT_RETRY_AFTER
        mean = sum(self._durations) / len(self._durations)
        backlog = len(self._queued) + len(self._running)
        estimate = mean * max(1, backlog) / self.max_running
        return max(1, min(300, round(estimate)))

    # -- cancellation ------------------------------------------------------
    def cancel(self, job_id: str) -> Job:
        """Cancel one job; raises KeyError for an unknown id.

        Queued jobs leave the queue immediately (promoting a coalesced
        follower, if any, so the shared computation survives).  Running
        jobs get their cooperative event; the slot frees at the next
        chunk boundary.  Followers detach without disturbing the
        primary's computation.
        """
        job = self.jobs[job_id]
        if job.finished:
            return job
        if job.coalesced_with is not None:
            primary = self.jobs.get(job.coalesced_with)
            if primary is not None and job in primary.followers:
                primary.followers.remove(job)
            self._finish(job, CANCELLED, error="cancelled by client")
            return job
        if job in self._queued:
            self._cancel_queued(job)
            return job
        if job.job_id in self._running:
            if job.followers:
                # Others still want this computation: detach the
                # canceller, keep the work running for the followers.
                promoted = job.followers.pop(0)
                self._adopt(job, promoted)
                self._finish(job, CANCELLED, error="cancelled by client")
            else:
                job.cancel_event.set()
                # A fresh identical submission must not coalesce onto
                # this dying computation (it would be settled CANCELLED
                # without its client ever cancelling): release the key
                # so it enqueues new work instead.
                if self._by_key.get(job.key) is job:
                    del self._by_key[job.key]
        return job

    def _cancel_queued(self, job: Job) -> None:
        self._queued.remove(job)
        if job.followers:
            promoted = job.followers.pop(0)
            self._adopt(job, promoted)
            self._queued.append(promoted)
        else:
            self._by_key.pop(job.key, None)
        self._finish(job, CANCELLED, error="cancelled while queued")

    def _adopt(self, old: Job, promoted: Job) -> None:
        """Make ``promoted`` the primary for ``old``'s computation."""
        promoted.coalesced_with = None
        promoted.followers = old.followers
        old.followers = []
        for follower in promoted.followers:
            follower.coalesced_with = promoted.job_id
        promoted.cancel_event = old.cancel_event
        promoted.state = old.state
        promoted.started_at = old.started_at
        old.superseded_by = promoted
        self._by_key[old.key] = promoted
        if old.job_id in self._running:
            del self._running[old.job_id]
            self._running[promoted.job_id] = promoted

    # -- dispatch ----------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._draining:
                continue
            while self._queued and len(self._running) < self.max_running:
                job = self._pick_next()
                self._queued.remove(job)
                self._running[job.job_id] = job
                self._served[job.client] = \
                    self._served.get(job.client, 0) + 1
                asyncio.create_task(self._run_job(job))

    def _pick_next(self) -> Job:
        """Highest priority, then least-served client, then arrival."""
        return min(self._queued,
                   key=lambda j: (-j.priority,
                                  self._served.get(j.client, 0), j.seq))

    async def _run_job(self, job: Job) -> None:
        job.state = RUNNING
        job.started_at = time.time()
        obs_metrics.registry().histogram("serve.job.queue_wait_s") \
            .observe(job.started_at - job.submitted_at)
        for follower in job.followers:
            follower.state = RUNNING
            follower.started_at = job.started_at
        loop = asyncio.get_running_loop()
        timeout = self.job_timeout or None
        timed_out = False
        try:
            await chaos_point_async("serve.scheduler.dispatch",
                                    key=job.key,
                                    attempt=job.infra_retries)
            future = loop.run_in_executor(self._executor,
                                          self._execute_job, job,
                                          job.infra_retries)
            if timeout:
                try:
                    result = await asyncio.wait_for(
                        asyncio.shield(future), timeout)
                except asyncio.TimeoutError:
                    # The thread cannot be killed; ask it to stop at the
                    # next chunk boundary and wait for the flush.
                    timed_out = True
                    job.cancel_event.set()
                    result = await future
            else:
                result = await future
        except JobCancelled as error:
            self._settle(self._owner(job), CANCELLED,
                         error=("job timeout exceeded" if timed_out
                                else str(error) or "cancelled"),
                         timed_out=timed_out)
            return
        except INFRA_ERRORS as error:
            # The infrastructure (disk, executor) failed, not the job:
            # requeue within a bounded budget, then settle FAILED
            # carrying the whole failure chain for the postmortem.
            owner = self._owner(job)
            owner.failure_chain.append(f"{type(error).__name__}: {error}")
            if (owner.infra_retries < self.infra_retry_budget
                    and not owner.cancel_event.is_set()
                    and not self._draining):
                owner.infra_retries += 1
                self.infra_requeues += 1
                run_log.warning(
                    "job %s hit an infrastructure error (%s); requeue "
                    "%d/%d", owner.job_id, error, owner.infra_retries,
                    self.infra_retry_budget)
                self._requeue(owner)
                return
            self._settle(owner, FAILED, error=(
                f"infrastructure failure after {owner.infra_retries} "
                f"retr{'y' if owner.infra_retries == 1 else 'ies'}: "
                f"{owner.failure_chain[-1]}"))
            return
        except Exception as error:  # surface, never crash the loop
            self._settle(self._owner(job), FAILED,
                         error=f"{type(error).__name__}: {error}")
            return
        # A cancel/timeout that landed after the last chunk still
        # yields a whole result — seal and serve it.  The seal is a
        # write + fsync + rename: off-loop, like every other disk
        # touch on the serving path.
        await loop.run_in_executor(None, self.cache.put, job.spec,
                                   result)
        self._settle(self._owner(job), DONE, result=result)

    def _execute_job(self, job: Job, attempt: int):
        """Executor-thread entry: root the job's trace, run the work.

        Runs *off-loop* (handed to ``run_in_executor``), touching only
        the job's unguarded-ok fields and the thread-safe pool
        (``attempt`` is the loop-confined retry count, captured on the
        loop at dispatch).  The root span's trace id derives from the
        job's cache key, so an identical resubmission — or a
        chaos-requeued retry — lands in the same trace, and the
        campaign engine's child spans nest under it via the ambient
        context of this executor thread.
        """
        short_key = job.key[:16]
        with obs_trace.span(f"serve.job.{job.spec.type}", key=short_key,
                            trace_id=short_key, attempt=attempt):
            return self.pool.execute(job.spec, job.cancel_event)

    def _requeue(self, job: Job) -> None:
        """Put a job that survived an infra failure back on the queue.

        The job keeps its key ownership (followers stay attached and
        fresh identical submissions keep coalescing onto it); it
        re-enters the fair-share pick with its original priority and
        arrival order.
        """
        del self._running[job.job_id]
        job.state = QUEUED
        for follower in job.followers:
            follower.state = QUEUED
        self._queued.append(job)
        self._wake.set()

    @staticmethod
    def _owner(job: Job) -> Job:
        """The job that currently owns the computation ``job`` started.

        A cancelled primary may have handed its slot to a promoted
        follower (possibly repeatedly) while the executor thread kept
        working; the chain leads to whoever should be settled.
        """
        while job.superseded_by is not None:
            job = job.superseded_by
        return job

    def _settle(self, job: Job, state: str,
                result: Optional[Dict[str, object]] = None,
                error: Optional[str] = None,
                timed_out: bool = False) -> None:
        """Finish a primary: free its slot, settle followers, rearm."""
        del self._running[job.job_id]
        # Cancelling a follower-less running primary already released
        # its key, and a fresh submission may own it now — only drop
        # the mapping if it is still ours.
        if self._by_key.get(job.key) is job:
            del self._by_key[job.key]
        if job.started_at is not None:
            duration = time.time() - job.started_at
            self._durations.append(duration)
            obs_metrics.registry().histogram("serve.job.duration_s") \
                .observe(duration)
        if timed_out:
            self.counters.add(timeouts=1)
        followers, job.followers = job.followers, []
        self._finish(job, state, result=result, error=error)
        for follower in followers:
            self._finish(follower, state, result=result, error=error)
        self._wake.set()

    def _finish(self, job: Job, state: str,
                result: Optional[Dict[str, object]] = None,
                error: Optional[str] = None,
                cache_hit: bool = False) -> None:
        job.state = state
        job.result = result
        job.error = error
        job.cache_hit = cache_hit
        job.finished_at = time.time()
        if state == DONE:
            self.counters.add(completed=1)
        elif state == FAILED:
            self.counters.add(failed=1)
        elif state == CANCELLED:
            self.counters.add(cancelled=1)
        job.done_event.set()

    # -- introspection -----------------------------------------------------
    def get(self, job_id: str) -> Job:
        return self.jobs[job_id]

    def queue_stats(self) -> Dict[str, int]:
        return {
            "depth": len(self._queued),
            "limit": self.max_queue,
            "running": len(self._running),
            "slots": self.max_running,
            "infra_requeues": self.infra_requeues,
        }
