"""CLI verbs for the serve layer.

Daemon::

    python -m repro serve --port 8765 --workdir runs/serve \\
        --max-queue 16 --max-running 2

Client (against a running daemon; ``--url`` or ``REPRO_SERVE_URL``
override the default ``http://127.0.0.1:8765``)::

    python -m repro submit campaign --set workloads='["gcc"]' \\
        --set injections=50 --wait
    python -m repro submit fig6 --set instructions=400
    python -m repro status j000001 --wait 30
    python -m repro fetch j000001
    python -m repro cancel j000002
    python -m repro metrics

``submit`` accepts either a job type (``campaign``, ``run``, ``avf``,
``analyze``, ``experiment``) or an experiment id (``fig6`` …) as
shorthand for ``experiment --set experiment=fig6``.  All output is
JSON in the unified ``{"version", "tool": "serve", ...}`` envelope.

Exit codes: 0 success (job done / accepted), 1 job failed or was
cancelled, 2 usage or validation error, 3 the server refused the job
(queue full / draining) or is unreachable.
"""

import argparse
import asyncio
import json
import os
import sys
from typing import Dict, List, Optional

from repro.serve.client import DEFAULT_URL, ServeClient, ServeError


def _default_url() -> str:
    return os.environ.get("REPRO_SERVE_URL", DEFAULT_URL)


def _print_json(payload: Dict[str, object]) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _parse_set(assignments: List[str]) -> Dict[str, object]:
    """``--set key=value`` pairs; values parse as JSON, else strings."""
    params: Dict[str, object] = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        if not sep or not key:
            raise argparse.ArgumentTypeError(
                f"--set expects key=value, got {assignment!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


# -- daemon ----------------------------------------------------------------

def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Async simulation-as-a-service daemon (submit jobs "
                    "with `repro submit`)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument("--workdir", default="runs/serve",
                        help="artifact + result-cache root")
    parser.add_argument("--max-queue", type=int, default=16,
                        help="queued-job bound (admission control; "
                             "full queue → HTTP 429)")
    parser.add_argument("--max-running", type=int, default=2,
                        help="concurrent jobs (executor threads)")
    parser.add_argument("--job-timeout", type=float, default=0.0,
                        help="per-job wall-clock budget in seconds "
                             "(0 = unlimited; timed-out jobs stop at "
                             "the next chunk boundary)")
    parser.add_argument("--campaign-jobs", type=int, default=1,
                        help="default worker processes per campaign "
                             "job (a job's own `jobs` param wins)")
    parser.add_argument("--chaos", metavar="PLAN.json", default=None,
                        help="arm a chaos fault-injection plan in the "
                             "daemon (see `python -m repro chaos plan`)")
    parser.add_argument("--trace", action="store_true",
                        help="arm span tracing: append spans to "
                             "<workdir>/spans.jsonl (read them with "
                             "`python -m repro obs report`; /metrics "
                             "gains per-trace summaries)")
    return parser


def cmd_serve(argv: List[str]) -> int:
    from repro.serve.api import run_server

    args = _build_serve_parser().parse_args(argv)
    if args.chaos:
        from repro.chaos import ChaosPlan, ChaosPlanError, arm
        try:
            plan = ChaosPlan.load(args.chaos)
        except (OSError, ChaosPlanError) as error:
            print(f"error: bad chaos plan {args.chaos}: {error}",
                  file=sys.stderr)
            return 2
        arm(plan)
        print(f"chaos: armed {len(plan.rules)} rule(s) from "
              f"{args.chaos} (seed {plan.seed})", flush=True)
    if args.trace:
        from pathlib import Path

        from repro.obs.trace import arm_tracing
        span_path = Path(args.workdir) / "spans.jsonl"
        span_path.parent.mkdir(parents=True, exist_ok=True)
        arm_tracing(span_path)
        print(f"trace: armed, spans append to {span_path}", flush=True)
    try:
        asyncio.run(run_server(
            host=args.host, port=args.port, workdir=args.workdir,
            max_queue=args.max_queue, max_running=args.max_running,
            job_timeout=args.job_timeout,
            campaign_jobs=args.campaign_jobs))
    except OSError as error:
        print(f"error: cannot listen on {args.host}:{args.port}: "
              f"{error}", file=sys.stderr)
        return 2
    return 0


# -- client verbs ----------------------------------------------------------

def _add_url(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", default=_default_url(),
                        help="daemon base URL (or set REPRO_SERVE_URL)")


def _job_exit_code(payload: Dict[str, object]) -> int:
    state = payload.get("job", {}).get("state")
    return 0 if state in ("done", "queued", "running") else 1


def cmd_submit(argv: List[str]) -> int:
    from repro.harness.experiments import EXPERIMENT_REGISTRY
    from repro.serve.jobs import list_job_types

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a job to a running serve daemon")
    parser.add_argument("job_type",
                        help=f"job type ({', '.join(list_job_types())}) "
                             f"or an experiment id (e.g. fig6)")
    parser.add_argument("--set", action="append", default=[],
                        metavar="KEY=VALUE", dest="assignments",
                        help="job parameter (value parsed as JSON when "
                             "possible); repeatable")
    parser.add_argument("--client", default="cli",
                        help="client identity for fair-share scheduling")
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--wait", nargs="?", type=float, const=600.0,
                        default=None, metavar="SECONDS",
                        help="block until the job finishes (default "
                             "600s) and print its final status")
    _add_url(parser)
    args = parser.parse_args(argv)
    try:
        params = _parse_set(args.assignments)
    except argparse.ArgumentTypeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    job_type = args.job_type
    if job_type in EXPERIMENT_REGISTRY:
        params.setdefault("experiment", job_type)
        job_type = "experiment"
    client = ServeClient(args.url)
    payload = client.submit(job_type, params, client=args.client,
                            priority=args.priority)
    job = payload["job"]
    if args.wait is not None and job["state"] not in ("done", "failed",
                                                      "cancelled"):
        payload = client.wait_for(job["id"], timeout=args.wait)
    _print_json(payload)
    return _job_exit_code(payload)


def cmd_status(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro status", description="Poll a job's state")
    parser.add_argument("job_id")
    parser.add_argument("--wait", type=float, default=0.0,
                        help="long-poll up to SECONDS for completion")
    _add_url(parser)
    args = parser.parse_args(argv)
    payload = ServeClient(args.url).status(args.job_id, wait=args.wait)
    _print_json(payload)
    return _job_exit_code(payload)


def cmd_fetch(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fetch", description="Fetch a finished job's result")
    parser.add_argument("job_id")
    _add_url(parser)
    args = parser.parse_args(argv)
    _print_json(ServeClient(args.url).result(args.job_id))
    return 0


def cmd_cancel(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cancel", description="Cancel a queued or running job")
    parser.add_argument("job_id")
    _add_url(parser)
    args = parser.parse_args(argv)
    _print_json(ServeClient(args.url).cancel(args.job_id))
    return 0


def cmd_metrics(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Served-job counters, queue depth, cache stats")
    _add_url(parser)
    args = parser.parse_args(argv)
    _print_json(ServeClient(args.url).metrics())
    return 0


_VERBS = {
    "serve": cmd_serve,
    "submit": cmd_submit,
    "status": cmd_status,
    "fetch": cmd_fetch,
    "cancel": cmd_cancel,
    "metrics": cmd_metrics,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _VERBS:
        print(f"usage: repro {{{'|'.join(_VERBS)}}} ...",
              file=sys.stderr)
        return 2
    verb, rest = argv[0], argv[1:]
    try:
        return _VERBS[verb](rest)
    except ServeError as error:
        print(json.dumps({"error": error.payload.get("error",
                                                     str(error)),
                          "status": error.status,
                          **({"retry_after": error.retry_after}
                             if error.retry_after is not None else {})},
                         indent=2, sort_keys=True),
              file=sys.stderr)
        return 3 if error.status in (429, 503) else 1
    except (ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
