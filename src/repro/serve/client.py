"""Stdlib HTTP client for a running serve daemon.

Used by the ``repro submit|status|fetch|cancel|metrics`` CLI verbs,
tests, and examples.  Every method returns the server's parsed JSON;
non-2xx responses raise :class:`ServeError` carrying the HTTP status
and the server's error payload (including ``retry_after`` on 429, so a
polite caller can back off exactly as long as the server asked).
"""

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional

DEFAULT_URL = "http://127.0.0.1:8765"

#: Cap on one blocking status long-poll (mirrors the server's cap).
WAIT_SLICE_S = 30


class ServeError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = (payload.get("error")
                   if isinstance(payload, dict) else None)
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    @property
    def retry_after(self) -> Optional[int]:
        value = self.payload.get("retry_after")
        return int(value) if value is not None else None


class ServeClient:
    """Thin blocking wrapper over the daemon's JSON API."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------
    def request(self, method: str, path: str,
                body: Optional[Dict[str, object]] = None,
                timeout: Optional[float] = None) -> Dict[str, object]:
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": raw}
            raise ServeError(error.code, payload) from None

    # -- verbs -------------------------------------------------------------
    def submit(self, job_type: str,
               params: Optional[Dict[str, object]] = None,
               client: str = "cli",
               priority: int = 0) -> Dict[str, object]:
        return self.request("POST", "/v1/jobs", body={
            "type": job_type, "params": params or {},
            "client": client, "priority": priority,
        })

    def status(self, job_id: str,
               wait: float = 0.0) -> Dict[str, object]:
        path = f"/v1/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait}"
        return self.request("GET", path,
                            timeout=self.timeout + max(0.0, wait))

    def result(self, job_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, object]:
        return self.request("GET", "/v1/jobs")

    def metrics(self) -> Dict[str, object]:
        return self.request("GET", "/metrics")

    def healthz(self) -> Dict[str, object]:
        return self.request("GET", "/healthz")

    # -- conveniences ------------------------------------------------------
    def wait_for(self, job_id: str,
                 timeout: float = 600.0) -> Dict[str, object]:
        """Long-poll until the job leaves the queued/running states."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still unfinished after {timeout}s")
            status = self.status(job_id,
                                 wait=min(WAIT_SLICE_S, remaining))
            job = status["job"]
            if job["state"] in ("done", "failed", "cancelled"):
                return status

    def ping(self, attempts: int = 50,
             interval: float = 0.1) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (startup races)."""
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                return self.healthz()
            except (ServeError, urllib.error.URLError, OSError) as error:
                last_error = error
                time.sleep(interval)
        raise ConnectionError(
            f"no serve daemon at {self.base_url}: {last_error}")
