"""Stdlib HTTP client for a running serve daemon.

Used by the ``repro submit|status|fetch|cancel|metrics`` CLI verbs,
tests, and examples.  Every method returns the server's parsed JSON;
non-2xx responses raise :class:`ServeError` carrying the HTTP status
and the server's error payload (including ``retry_after`` on 429, so a
polite caller can back off exactly as long as the server asked).

Transport resilience (the network is not reliable):

- **bounded retries with full-jitter exponential backoff** — transport
  failures (connection reset, refused, torn response body, timeout)
  and 5xx responses are retried up to ``retries`` times, but **only
  for idempotent methods** (GET/HEAD/DELETE): a POST that died mid-
  flight may already have been applied, and blind resubmission would
  duplicate it.  Jitter draws come from :mod:`repro.util.rng`, so a
  seeded test can predict every delay;
- **429 admission pushback** — the server refused *before* doing any
  work, so waiting out ``Retry-After`` (capped, bounded attempts) and
  resubmitting is safe for every method, POST included;
- **per-host circuit breaker** — after ``BREAKER_THRESHOLD``
  consecutive transport failures the breaker *opens* and requests to
  that host fail fast with :class:`CircuitOpenError` (no connect
  attempt, no backoff sleep) until a cooldown elapses; then one
  *half-open* probe either closes it (success) or re-opens it.
  Breakers are process-global per netloc — every client talking to a
  dead daemon shares the verdict.

``ping`` bypasses all of this: it *is* the retry loop (startup races),
and its probes must not trip or consult the breaker.

Concurrency:
    guarded-by _BREAKERS_LOCK: _BREAKERS
"""

import http.client
import json
import logging
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Optional

from repro.chaos import chaos_point
from repro.util.rng import DeterministicRng, seed_from

run_log = logging.getLogger("repro.run")

DEFAULT_URL = "http://127.0.0.1:8765"

#: Cap on one blocking status long-poll (mirrors the server's cap).
WAIT_SLICE_S = 30

#: Default transport retry budget (attempts = retries + 1); bounded so
#: no call loops forever (simlint S401).
DEFAULT_RETRIES = 3
#: Full-jitter backoff: sleep ~ U(0, min(cap, base * 2**attempt)).
BACKOFF_BASE_S = 0.1
BACKOFF_CAP_S = 2.0
#: Never honor a Retry-After longer than this (a confused server must
#: not park the client for an hour).
RETRY_AFTER_CAP_S = 30.0

#: Consecutive transport failures that open a host's breaker.
BREAKER_THRESHOLD = 5
#: Seconds an open breaker rejects instantly before one half-open probe.
BREAKER_COOLDOWN_S = 5.0

#: Methods safe to resubmit after an ambiguous transport failure.
IDEMPOTENT_METHODS = frozenset({"GET", "HEAD", "DELETE"})

#: Ambiguous transport failures: reset, refused, timeout, torn body.
#: (URLError and socket.timeout are OSError subclasses.)
TRANSPORT_ERRORS = (OSError, http.client.HTTPException)


class ServeError(Exception):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = (payload.get("error")
                   if isinstance(payload, dict) else None)
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload if isinstance(payload, dict) else {}

    @property
    def retry_after(self) -> Optional[int]:
        value = self.payload.get("retry_after")
        return int(value) if value is not None else None


class CircuitOpenError(ConnectionError):
    """Fast-fail: the host's circuit breaker is open (cooling down)."""


class _CircuitBreaker:
    """Classic closed → open → half-open breaker, one per host.

    Process-global and consulted from every thread that talks HTTP, so
    the whole state machine sits under one lock; threshold/cooldown
    are immutable after construction.

    Concurrency:
        guarded-by _lock: state, failures, opened_at
        unguarded-ok: threshold, cooldown_s
    """

    def __init__(self, threshold: int = BREAKER_THRESHOLD,
                 cooldown_s: float = BREAKER_COOLDOWN_S) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.failures = 0
        self.opened_at = 0.0
        self._lock = threading.Lock()

    def allow(self) -> bool:
        with self._lock:
            if self.state != "open":
                return True
            if time.monotonic() - self.opened_at >= self.cooldown_s:
                self.state = "half-open"  # let one probe through
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self.state = "closed"
            self.failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            if self.state == "half-open" or self.failures >= self.threshold:
                self.state = "open"
                self.opened_at = time.monotonic()


_BREAKERS: Dict[str, _CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(netloc: str) -> _CircuitBreaker:
    """The process-global breaker guarding ``netloc``."""
    with _BREAKERS_LOCK:
        if netloc not in _BREAKERS:
            _BREAKERS[netloc] = _CircuitBreaker()
        return _BREAKERS[netloc]


def reset_breakers() -> None:
    """Forget all breaker state (tests, or an operator-forced reset)."""
    with _BREAKERS_LOCK:
        _BREAKERS.clear()


class ServeClient:
    """Blocking wrapper over the daemon's JSON API, with retries."""

    def __init__(self, base_url: str = DEFAULT_URL,
                 timeout: float = 120.0,
                 retries: int = DEFAULT_RETRIES) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.netloc = urllib.parse.urlsplit(self.base_url).netloc
        # Seeded jitter: delays are deterministic per (client, call
        # sequence), so tests can assert the exact backoff schedule.
        self._rng = DeterministicRng.from_seed(
            seed_from("serve-client-backoff", self.base_url))

    # -- plumbing ----------------------------------------------------------
    def backoff_delay(self, attempt: int) -> float:
        """Full-jitter delay before retry number ``attempt + 1``."""
        cap = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
        return cap * self._rng.random()

    def _send(self, method: str, path: str,
              body: Optional[Dict[str, object]],
              timeout: Optional[float]) -> Dict[str, object]:
        """One wire round-trip; no retries, no breaker."""
        data = (json.dumps(body).encode("utf-8")
                if body is not None else None)
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=timeout or self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": raw}
            raise ServeError(error.code, payload) from None

    def request(self, method: str, path: str,
                body: Optional[Dict[str, object]] = None,
                timeout: Optional[float] = None) -> Dict[str, object]:
        """Send a request, riding out transient infrastructure faults.

        Retry policy (each retry consumes one unit of the shared,
        bounded ``retries`` budget):

        - transport failure or 5xx → backoff and retry, idempotent
          methods only;
        - 429 → wait the server's (capped) ``retry_after`` and retry,
          any method — admission was refused before any work happened;
        - other 4xx → raise immediately (the request is wrong, not the
          infrastructure).
        """
        method = method.upper()
        breaker = breaker_for(self.netloc)
        idempotent = method in IDEMPOTENT_METHODS
        attempt = 0
        while True:
            if not breaker.allow():
                raise CircuitOpenError(
                    f"circuit breaker open for {self.netloc} "
                    f"(cooling down after repeated failures)")
            chaos_point("serve.client.request",
                        key=f"{method} {path}", attempt=attempt)
            try:
                result = self._send(method, path, body, timeout)
            except ServeError as error:
                if error.status == 429:
                    # The daemon is alive and refused admission before
                    # doing any work: close the breaker, honor its
                    # Retry-After, and resubmit (safe for any method).
                    breaker.record_success()
                    if attempt >= self.retries:
                        raise
                    delay = (float(error.retry_after)
                             if error.retry_after is not None
                             else self.backoff_delay(attempt))
                    time.sleep(min(RETRY_AFTER_CAP_S, max(0.0, delay)))
                    attempt += 1
                    continue
                if error.status >= 500:
                    breaker.record_failure()
                    if idempotent and attempt < self.retries:
                        self._backoff(method, path, attempt)
                        attempt += 1
                        continue
                else:
                    breaker.record_success()  # host healthy, caller wrong
                raise
            except TRANSPORT_ERRORS as error:
                breaker.record_failure()
                if idempotent and attempt < self.retries:
                    run_log.debug(
                        "serve client: %s %s attempt %d failed (%s); "
                        "retrying", method, path, attempt + 1, error)
                    self._backoff(method, path, attempt)
                    attempt += 1
                    continue
                raise
            breaker.record_success()
            return result

    def _backoff(self, method: str, path: str, attempt: int) -> None:
        time.sleep(self.backoff_delay(attempt))

    # -- verbs -------------------------------------------------------------
    def submit(self, job_type: str,
               params: Optional[Dict[str, object]] = None,
               client: str = "cli",
               priority: int = 0) -> Dict[str, object]:
        return self.request("POST", "/v1/jobs", body={
            "type": job_type, "params": params or {},
            "client": client, "priority": priority,
        })

    def status(self, job_id: str,
               wait: float = 0.0) -> Dict[str, object]:
        path = f"/v1/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait}"
        return self.request("GET", path,
                            timeout=self.timeout + max(0.0, wait))

    def result(self, job_id: str) -> Dict[str, object]:
        return self.request("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def jobs(self) -> Dict[str, object]:
        return self.request("GET", "/v1/jobs")

    def metrics(self) -> Dict[str, object]:
        return self.request("GET", "/metrics")

    def healthz(self) -> Dict[str, object]:
        return self.request("GET", "/healthz")

    # -- conveniences ------------------------------------------------------
    def wait_for(self, job_id: str,
                 timeout: float = 600.0) -> Dict[str, object]:
        """Long-poll until the job leaves the queued/running states."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"job {job_id} still unfinished after {timeout}s")
            status = self.status(job_id,
                                 wait=min(WAIT_SLICE_S, remaining))
            job = status["job"]
            if job["state"] in ("done", "failed", "cancelled"):
                return status

    def ping(self, attempts: int = 50,
             interval: float = 0.1) -> Dict[str, object]:
        """Poll ``/healthz`` until the daemon answers (startup races).

        Probes go straight to the wire — no client retries (this *is*
        the retry loop) and no breaker (refusals during startup are
        expected and must not open the circuit or be blocked by one).
        """
        last_error: Optional[Exception] = None
        for _ in range(attempts):
            try:
                return self._send("GET", "/healthz", None, None)
            except (ServeError,) + TRANSPORT_ERRORS as error:
                last_error = error
                time.sleep(interval)
        raise ConnectionError(
            f"no serve daemon at {self.base_url}: {last_error}")
