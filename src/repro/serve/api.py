"""Asyncio HTTP/JSON front-end for the scheduler.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
stdlib only, one request per connection, JSON in and out.  Endpoints:

====== ============================ ===================================
POST   /v1/jobs                     submit ``{"type", "params",
                                    "client", "priority"}`` → job dict
                                    (202; 200 when answered instantly
                                    from the cache; 429 + Retry-After
                                    when the queue is full; 503 while
                                    draining)
GET    /v1/jobs                     job summaries, newest last
GET    /v1/jobs/<id>[?wait=S]       status; ``wait`` long-polls up to
                                    S seconds for completion
GET    /v1/jobs/<id>/result         the sealed result payload (409
                                    until the job is done)
DELETE /v1/jobs/<id>                cancel (queued: immediate; running:
                                    cooperative, next chunk boundary)
GET    /healthz                     liveness + drain state
GET    /metrics                     served-job counters, queue depth,
                                    cache stats
====== ============================ ===================================

Every body is JSON with sorted keys; job and metrics payloads reuse
the unified ``{"version", "tool": "serve", ...}`` envelope shared with
the analyze/lint/avf reporters.
"""

import asyncio
import json
import signal
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.analysis.report import SCHEMA_VERSION, envelope
from repro.chaos import chaos_point_async
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serve.cache import ResultCache
from repro.serve.jobs import JobSpec, JobValidationError
from repro.serve.pool import WorkerPool
from repro.serve.scheduler import DONE, Draining, QueueFull, Scheduler

_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Upper bound on request bodies (a job spec is tiny; anything larger
#: is a mistake or abuse).
MAX_BODY_BYTES = 1 << 20

#: Upper bounds on request headers — without them a client sending
#: headers forever would hold daemon memory indefinitely.
MAX_HEADER_BYTES = 8192
MAX_HEADER_LINES = 100

#: Wall-clock budget for reading one full request; a client that opens
#: a connection and stalls is dropped rather than parked forever.
REQUEST_READ_TIMEOUT = 30.0

#: Upper bound on a single long-poll wait.
MAX_WAIT_S = 60.0


class ServeServer:
    """One daemon: scheduler + cache + HTTP listener."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workdir: str = "runs/serve", max_queue: int = 16,
                 max_running: int = 2, job_timeout: float = 0.0,
                 campaign_jobs: int = 1,
                 scheduler: Optional[Scheduler] = None) -> None:
        self.host = host
        self.requested_port = port
        if scheduler is None:
            pool = WorkerPool(workdir, campaign_jobs=campaign_jobs)
            cache = ResultCache(f"{workdir}/cache")
            scheduler = Scheduler(pool, cache, max_queue=max_queue,
                                  max_running=max_running,
                                  job_timeout=job_timeout)
        self.scheduler = scheduler
        self.started_at = time.time()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port)

    async def shutdown(self) -> None:
        """SIGTERM path: stop listening, drain, then release the loop."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.scheduler.drain()
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`shutdown` is called (typically by a signal)."""
        await self.start()
        await self._stopping.wait()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.shutdown()))

    # -- HTTP plumbing -----------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        request_desc = "?"
        request_t0 = time.monotonic()
        try:
            status, payload, request_desc = await asyncio.wait_for(
                self._handle_request(reader), REQUEST_READ_TIMEOUT)
        except (ConnectionError, asyncio.TimeoutError,
                asyncio.IncompleteReadError):
            # Includes an injected serve.api.request conn-reset: the
            # connection just dies, exactly like a yanked cable.
            writer.close()
            return
        except Exception as error:  # never take the daemon down
            status, payload = 500, {"error": f"{type(error).__name__}: "
                                             f"{error}"}
        # In-memory histogram update: a lock-guarded dict bump, never
        # a disk or network touch, so it is loop-safe.
        registry = obs_metrics.registry()
        registry.histogram("serve.request.duration_s").observe(
            time.monotonic() - request_t0)
        registry.counter(f"serve.request.{status // 100}xx").inc()
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        headers = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body.encode('utf-8'))}",
            "Connection: close",
        ]
        retry_after = payload.get("retry_after") if isinstance(
            payload, dict) else None
        if status == 429 and retry_after is not None:
            headers.append(f"Retry-After: {retry_after}")
        data = ("\r\n".join(headers) + "\r\n\r\n" + body).encode("utf-8")
        fault = await chaos_point_async("serve.api.response",
                                        key=request_desc)
        if fault is not None and fault.fault == "torn-write":
            # Send a truncated response and slam the connection shut:
            # the client sees an IncompleteRead and (for idempotent
            # requests) retries.
            data = data[:fault.tear(len(data))]
        writer.write(data)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            pass

    async def _handle_request(self, reader: asyncio.StreamReader
                              ) -> Tuple[int, Dict[str, object], str]:
        """Read, parse, route.  Returns (status, payload, request desc).

        The request description (``"GET /v1/jobs/j000001"``) keys the
        chaos hooks so fault rules can target specific routes.
        """
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        try:
            method, target, _ = request_line.split(" ", 2)
        except ValueError:
            return 400, {"error": f"malformed request line "
                                  f"{request_line!r}"}, request_line
        method = method.upper()
        split = urlsplit(target)
        request_desc = f"{method} {split.path}"
        content_length = 0
        header_bytes = 0
        header_lines = 0
        while True:
            raw_line = await reader.readline()
            header_bytes += len(raw_line)
            header_lines += 1
            if (header_bytes > MAX_HEADER_BYTES
                    or header_lines > MAX_HEADER_LINES):
                return (400, {"error": "request headers too large"},
                        request_desc)
            line = raw_line.decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return (400, {"error": "bad Content-Length"},
                            request_desc)
        if content_length > MAX_BODY_BYTES:
            return (400, {"error": "request body too large"},
                    request_desc)
        raw = (await reader.readexactly(content_length)
               if content_length else b"")
        query = {key: values[-1]
                 for key, values in parse_qs(split.query).items()}
        # An injected conn-reset here models the socket dying between
        # the read and the reply; the connection handler drops it.
        await chaos_point_async("serve.api.request", key=request_desc)
        status, payload = await self._route(method, split.path, query, raw)
        return status, payload, request_desc

    # -- routing -----------------------------------------------------------
    async def _route(self, method: str, path: str,
                     query: Dict[str, str],
                     raw: bytes) -> Tuple[int, Dict[str, object]]:
        parts = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            return 200, self._healthz()
        if path == "/metrics" and method == "GET":
            return 200, await self._metrics()
        if parts[:2] == ["v1", "jobs"]:
            if len(parts) == 2:
                if method == "POST":
                    return await self._submit(raw)
                if method == "GET":
                    return 200, self._list_jobs()
                return 405, {"error": f"{method} not allowed on {path}"}
            job_id = parts[2]
            if job_id not in self.scheduler.jobs:
                return 404, {"error": f"no job {job_id!r}"}
            if len(parts) == 3:
                if method == "GET":
                    return await self._status(job_id, query)
                if method == "DELETE":
                    return 200, self._job_envelope(
                        self.scheduler.cancel(job_id))
                return 405, {"error": f"{method} not allowed on {path}"}
            if len(parts) == 4 and parts[3] == "result" and method == "GET":
                return self._result(job_id)
        return 404, {"error": f"no route for {method} {path}"}

    # -- handlers ----------------------------------------------------------
    async def _submit(self, raw: bytes) -> Tuple[int, Dict[str, object]]:
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            return 400, {"error": f"request body is not JSON: {error}"}
        if not isinstance(body, dict):
            return 400, {"error": "request body must be a JSON object"}
        try:
            spec = JobSpec.build(body.get("type", ""),
                                 body.get("params") or {})
        except JobValidationError as error:
            return 400, {"error": str(error)}
        try:
            job = await self.scheduler.submit_async(
                spec, client=str(body.get("client", "anon")),
                priority=int(body.get("priority", 0)))
        except QueueFull as error:
            return 429, {"error": str(error),
                         "retry_after": error.retry_after}
        except Draining as error:
            return 503, {"error": str(error)}
        status = 200 if job.state == DONE else 202
        return status, self._job_envelope(job)

    async def _status(self, job_id: str, query: Dict[str, str]
                      ) -> Tuple[int, Dict[str, object]]:
        job = self.scheduler.get(job_id)
        try:
            wait = min(float(query.get("wait", 0) or 0), MAX_WAIT_S)
        except ValueError:
            return 400, {"error": f"bad wait value "
                                  f"{query.get('wait')!r}"}
        if wait > 0 and not job.finished:
            try:
                await asyncio.wait_for(job.done_event.wait(), wait)
            except asyncio.TimeoutError:
                pass  # report whatever state it is in now
        return 200, self._job_envelope(job)

    def _result(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self.scheduler.get(job_id)
        if job.state != DONE:
            return 409, {"error": f"job {job_id} is {job.state}, "
                                  f"not done", "state": job.state}
        return 200, self._job_envelope(job, include_result=True)

    def _list_jobs(self) -> Dict[str, object]:
        return envelope("serve", True, [],
                        jobs=[job.to_dict()
                              for job in self.scheduler.jobs.values()])

    def _job_envelope(self, job,
                      include_result: bool = False) -> Dict[str, object]:
        return envelope("serve", job.state != "failed", [],
                        job=job.to_dict(include_result=include_result))

    def _healthz(self) -> Dict[str, object]:
        return {
            "ok": True,
            "version": SCHEMA_VERSION,
            "state": ("draining" if self.scheduler.draining
                      else "serving"),
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    async def _metrics(self) -> Dict[str, object]:
        # cache.stats() walks the result tree on disk — off-loop, so
        # a monitoring scrape never stalls in-flight requests.  Same
        # for the span-log summary (a file read) when tracing is armed.
        loop = asyncio.get_running_loop()
        cache_stats = await loop.run_in_executor(
            None, self.scheduler.cache.stats)
        tracer = obs_trace.tracer()
        spans: Optional[Dict[str, object]] = None
        if tracer is not None:
            spans = await loop.run_in_executor(
                None, obs_trace.trace_summary, tracer.path)
        payload = envelope(
            "serve", True, [],
            counters=self.scheduler.counters.to_dict(),
            queue=self.scheduler.queue_stats(),
            cache=cache_stats,
            histograms=obs_metrics.registry().snapshot()["histograms"],
            uptime_s=round(time.time() - self.started_at, 3))
        if spans is not None:
            payload["spans"] = spans
        return payload


async def run_server(**kwargs) -> None:
    """CLI entry: serve until SIGTERM/SIGINT, then drain and exit."""
    server = ServeServer(**kwargs)
    server.install_signal_handlers()
    await server.start()
    print(f"repro serve: listening on {server.url} "
          f"(queue={server.scheduler.max_queue}, "
          f"slots={server.scheduler.max_running})", flush=True)
    await server._stopping.wait()
    print("repro serve: drained cleanly", flush=True)


class BackgroundServer:
    """A daemon on a private event-loop thread (tests, demos).

    Usage::

        with BackgroundServer(workdir=tmp) as handle:
            client = ServeClient(handle.url)
            ...
    """

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = None
        self.server: Optional[ServeServer] = None

    def __enter__(self) -> "BackgroundServer":
        import threading
        ready = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = ServeServer(**self._kwargs)
            loop.run_until_complete(self.server.start())
            ready.set()
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(target=runner,
                                        name="repro-serve-loop",
                                        daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("serve daemon failed to start")
        return self

    @property
    def url(self) -> str:
        assert self.server is not None
        return self.server.url

    def drain(self) -> None:
        """Synchronously drain the daemon (the SIGTERM path)."""
        assert self._loop is not None and self.server is not None
        future = asyncio.run_coroutine_threadsafe(self.server.shutdown(),
                                                  self._loop)
        future.result(timeout=120)

    def __exit__(self, *exc_info) -> None:
        try:
            if self.server is not None and self.server._server is not None:
                self.drain()
        finally:
            if self._loop is not None:
                self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)
