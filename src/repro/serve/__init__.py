"""repro.serve — async simulation-as-a-service layer.

A long-lived asyncio daemon (``python -m repro serve``) that accepts
simulation work — fault-injection campaigns, paper-figure experiments,
single runs, AVF/static analyses — over a stdlib HTTP/JSON API, with:

- a content-addressed result cache (same canonical-JSON/sha-256 scheme
  as the campaign store) so identical work is computed once and served
  from disk forever after, across daemon restarts;
- coalescing of identical in-flight submissions onto one execution;
- admission control: a bounded queue that rejects overload with
  HTTP 429 + ``Retry-After`` instead of degrading;
- per-client fair-share dispatch and priorities;
- cooperative per-job cancellation and timeouts that stop campaigns at
  a chunk boundary, leaving a valid resumable artifact.

Module map: :mod:`jobs` (spec validation + cache keys), :mod:`cache`
(sealed on-disk results), :mod:`scheduler` (queue/dispatch/lifecycle),
:mod:`pool` (bridge onto the existing engines), :mod:`api` (HTTP
server), :mod:`client` (stdlib client), :mod:`cli` (verbs).
See ``docs/SERVING.md``.
"""

from repro.serve.api import BackgroundServer, ServeServer
from repro.serve.cache import ResultCache
from repro.serve.client import DEFAULT_URL, ServeClient, ServeError
from repro.serve.jobs import (JOB_FORMAT_VERSION, JobSpec,
                              JobValidationError, list_job_types)
from repro.serve.pool import JobCancelled, WorkerPool
from repro.serve.scheduler import Draining, Job, QueueFull, Scheduler

__all__ = [
    "BackgroundServer",
    "DEFAULT_URL",
    "Draining",
    "JOB_FORMAT_VERSION",
    "Job",
    "JobCancelled",
    "JobSpec",
    "JobValidationError",
    "QueueFull",
    "ResultCache",
    "Scheduler",
    "ServeClient",
    "ServeServer",
    "ServeError",
    "WorkerPool",
    "list_job_types",
]
