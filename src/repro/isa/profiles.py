"""Behavioural profiles for the 18 SPEC CPU95-like synthetic workloads.

The paper evaluates on SPEC CPU95.  We cannot ship those binaries, so
each benchmark is replaced by a synthetic program generated from a
profile that reproduces the aggregate behaviours RMT performance depends
on: basic-block size (branch density), branch predictability, load/store
mix, floating-point mix, static code footprint (instruction-cache
pressure), data working-set size (data-cache pressure), and dependency
density (ILP).  The knob values below follow the well-documented
character of each benchmark (e.g. *go* is branchy and hard to predict,
*fpppp* has enormous basic blocks of dependent FP code, *swim* and
*tomcatv* stream through arrays far larger than the L1 data cache).
"""

from dataclasses import dataclass
from typing import Dict, Tuple

KIB_WORDS = 128  # 1 KiB of 8-byte words


@dataclass(frozen=True)
class WorkloadProfile:
    """Generator knobs for one synthetic benchmark."""

    name: str
    description: str
    # Static shape.
    blocks: int                      # basic blocks in the main region
    block_size: Tuple[int, int]      # body instructions per block (min, max)
    subroutines: int                 # callable leaf subroutines
    sub_block_size: Tuple[int, int]  # body size of subroutine blocks
    # Instruction mix (fractions of block-body instructions).
    load_frac: float
    store_frac: float
    fp_frac: float
    mul_frac: float
    partial_store_frac: float = 0.01  # of stores, fraction that are STH
    membar_frac: float = 0.001        # per-body-slot probability of MEMBAR
    # Block-terminator mix (probabilities; remainder falls through).
    loop_frac: float = 0.25           # loop tail (well-predicted backward)
    random_branch_frac: float = 0.10  # LCG-driven 50/50 forward branch
    biased_branch_frac: float = 0.15  # rarely-taken forward branch
    call_frac: float = 0.05           # call/return pair
    indirect_frac: float = 0.0        # table-driven indirect jump
    loop_trip: Tuple[int, int] = (4, 24)
    # Data behaviour.
    working_set_words: int = 8 * KIB_WORDS
    access_pattern: str = "strided"   # 'strided' | 'random' | 'mixed'
    stride_words: int = 8
    # ILP: probability an operand comes from a very recent result.
    dep_density: float = 0.35

    def __post_init__(self) -> None:
        total = (self.loop_frac + self.random_branch_frac
                 + self.biased_branch_frac + self.call_frac
                 + self.indirect_frac)
        if total > 1.0 + 1e-9:
            raise ValueError(f"{self.name}: terminator fractions sum to {total}")
        if self.working_set_words & (self.working_set_words - 1):
            raise ValueError(f"{self.name}: working set must be a power of two")
        if self.access_pattern not in ("strided", "random", "mixed"):
            raise ValueError(f"{self.name}: bad access pattern {self.access_pattern}")


def _int_profile(name: str, description: str, **overrides) -> WorkloadProfile:
    """Base template for SPECint-like behaviour."""
    params = dict(
        name=name, description=description,
        blocks=220, block_size=(4, 10), subroutines=6, sub_block_size=(3, 8),
        load_frac=0.26, store_frac=0.12, fp_frac=0.0, mul_frac=0.03,
        loop_frac=0.24, random_branch_frac=0.05, biased_branch_frac=0.22,
        call_frac=0.08, indirect_frac=0.02, partial_store_frac=0.04,
        working_set_words=16 * KIB_WORDS, access_pattern="mixed",
        dep_density=0.32,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


def _fp_profile(name: str, description: str, **overrides) -> WorkloadProfile:
    """Base template for SPECfp-like behaviour."""
    params = dict(
        name=name, description=description,
        blocks=90, block_size=(14, 30), subroutines=3, sub_block_size=(8, 18),
        load_frac=0.30, store_frac=0.13, fp_frac=0.38, mul_frac=0.02,
        loop_frac=0.42, random_branch_frac=0.02, biased_branch_frac=0.08,
        call_frac=0.03, indirect_frac=0.0, loop_trip=(8, 48),
        membar_frac=0.0001,
        working_set_words=512 * KIB_WORDS, access_pattern="strided",
        stride_words=16, dep_density=0.12,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


# The 18 SPEC CPU95 benchmarks the paper evaluates (Figure 6 order).
SPEC95_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in [
        _fp_profile(
            "applu", "parabolic/elliptic PDE solver: nested FP loops, "
            "large arrays", working_set_words=256 * KIB_WORDS),
        _fp_profile(
            "apsi", "mesoscale hydrodynamics: moderate FP loops with some "
            "branchiness", blocks=130, random_branch_frac=0.06,
            working_set_words=128 * KIB_WORDS, access_pattern="mixed"),
        _int_profile(
            "compress", "LZW compression: tight data-dependent loop, "
            "hash-table accesses", blocks=60, block_size=(4, 10),
            random_branch_frac=0.10, biased_branch_frac=0.16,
            working_set_words=64 * KIB_WORDS, access_pattern="random",
            dep_density=0.45),
        _fp_profile(
            "fpppp", "quantum chemistry: enormous straight-line FP blocks, "
            "very few branches", blocks=24, block_size=(40, 90),
            subroutines=2, loop_frac=0.50, random_branch_frac=0.0,
            biased_branch_frac=0.04, call_frac=0.04, fp_frac=0.52,
            working_set_words=16 * KIB_WORDS, dep_density=0.15),
        _int_profile(
            "gcc", "compiler: very large static code, branchy, "
            "moderate prediction", blocks=900, block_size=(3, 9),
            subroutines=24, random_branch_frac=0.07, biased_branch_frac=0.24,
            call_frac=0.10, indirect_frac=0.03,
            working_set_words=32 * KIB_WORDS, dep_density=0.38),
        _int_profile(
            "go", "game playing: extremely branchy, data-dependent and "
            "hard to predict", blocks=700, block_size=(3, 7),
            subroutines=16, loop_frac=0.16, random_branch_frac=0.13,
            biased_branch_frac=0.22, call_frac=0.08, indirect_frac=0.02,
            working_set_words=16 * KIB_WORDS, dep_density=0.38),
        _fp_profile(
            "hydro2d", "Navier-Stokes: regular FP loops over large grids",
            working_set_words=256 * KIB_WORDS, stride_words=8),
        _int_profile(
            "ijpeg", "image compression: multiply-heavy, predictable loops",
            blocks=110, block_size=(6, 14), loop_frac=0.38,
            random_branch_frac=0.05, biased_branch_frac=0.10,
            mul_frac=0.12, working_set_words=64 * KIB_WORDS,
            access_pattern="strided", dep_density=0.35),
        _int_profile(
            "li", "lisp interpreter: call/return-dominated pointer chasing",
            blocks=160, block_size=(3, 7), subroutines=18,
            loop_frac=0.15, call_frac=0.22, random_branch_frac=0.05,
            biased_branch_frac=0.18, indirect_frac=0.03,
            working_set_words=8 * KIB_WORDS, access_pattern="random",
            dep_density=0.45),
        _int_profile(
            "m88ksim", "CPU simulator: predictable dispatch loop",
            blocks=140, block_size=(4, 10), loop_frac=0.34,
            random_branch_frac=0.05, biased_branch_frac=0.14,
            indirect_frac=0.04, working_set_words=8 * KIB_WORDS,
            dep_density=0.40),
        _fp_profile(
            "mgrid", "multigrid solver: deeply nested predictable FP loops",
            loop_trip=(16, 64), working_set_words=512 * KIB_WORDS,
            stride_words=4),
        _int_profile(
            "perl", "interpreter: branchy dispatch with calls and tables",
            blocks=420, block_size=(3, 8), subroutines=20,
            random_branch_frac=0.06, biased_branch_frac=0.22,
            call_frac=0.12, indirect_frac=0.05,
            working_set_words=16 * KIB_WORDS, dep_density=0.38),
        _fp_profile(
            "su2cor", "quantum physics Monte Carlo: FP with some "
            "irregular access", access_pattern="mixed",
            random_branch_frac=0.05, working_set_words=256 * KIB_WORDS),
        _fp_profile(
            "swim", "shallow-water model: streaming stencils over huge "
            "arrays", blocks=60, block_size=(16, 32), loop_frac=0.48,
            biased_branch_frac=0.04, working_set_words=1024 * KIB_WORDS,
            stride_words=16, dep_density=0.10),
        _fp_profile(
            "tomcatv", "mesh generation: vectorizable stencils, huge "
            "arrays", blocks=50, block_size=(16, 30), loop_frac=0.46,
            working_set_words=1024 * KIB_WORDS, stride_words=32,
            dep_density=0.10),
        _fp_profile(
            "turb3d", "turbulence simulation: FFT-like strided FP",
            access_pattern="mixed", stride_words=64,
            working_set_words=256 * KIB_WORDS),
        _int_profile(
            "vortex", "object database: very large code, load/store heavy, "
            "fairly predictable", blocks=800, block_size=(4, 9),
            subroutines=24, load_frac=0.30, store_frac=0.17,
            loop_frac=0.24, random_branch_frac=0.06, biased_branch_frac=0.18,
            call_frac=0.12, working_set_words=64 * KIB_WORDS,
            access_pattern="mixed", dep_density=0.45),
        _fp_profile(
            "wave5", "plasma physics: particle pushes with gather/scatter",
            access_pattern="mixed", random_branch_frac=0.04,
            working_set_words=512 * KIB_WORDS),
    ]
}

SPEC95_NAMES = list(SPEC95_PROFILES)

# The multiprogrammed subsets used by the paper (Section 6.2).
TWO_THREAD_POOL = ["gcc", "go", "fpppp", "swim"]
FOUR_THREAD_POOL = ["gcc", "go", "ijpeg", "fpppp", "swim"]


def get_profile(name: str) -> WorkloadProfile:
    try:
        return SPEC95_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(SPEC95_NAMES)}"
        ) from None


def split_workload(workload: str) -> Tuple[str, int]:
    """Split a ``name[@seed]`` workload spec into (profile, seed).

    Campaigns address generator variants of one profile as e.g.
    ``gcc@3``; a bare profile name means seed 0.  The profile part is
    validated against :data:`SPEC95_PROFILES`.
    """
    name, sep, seed_text = workload.partition("@")
    if name not in SPEC95_PROFILES:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(SPEC95_NAMES)}"
        )
    if not sep:
        return name, 0
    try:
        seed = int(seed_text, 10)
    except ValueError:
        raise ValueError(
            f"workload {workload!r}: seed {seed_text!r} is not an integer"
        ) from None
    if seed < 0:
        raise ValueError(f"workload {workload!r}: seed must be >= 0")
    return name, seed
