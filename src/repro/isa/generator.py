"""Synthetic benchmark generator.

Turns a :class:`~repro.isa.profiles.WorkloadProfile` into a concrete
RISC-R :class:`~repro.isa.program.Program`.  Programs are *real code*:
branch outcomes come from an in-program linear congruential generator
(so they are deterministic yet genuinely hard to predict), memory
addresses from strided or pseudo-random cursors over a working set, and
every value is actually computed — which is what lets redundant threads
be compared instruction-for-instruction and lets injected faults
propagate realistically.

Program shape::

    prologue            (register initialisation, runs once)
    main block 0..N-1   (loops, conditional branches, calls, indirect
                         jumps between them; last block branches back
                         to block 0, so programs run indefinitely)
    subroutines         (leaf code reached by CALL, ending in RET)

All randomness comes from the (profile, seed) pair.
"""

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Instruction, Op
from repro.isa.profiles import WorkloadProfile
from repro.isa.program import Program
from repro.util.rng import DeterministicRng

# -- register conventions -------------------------------------------------
R_LCG = 1        # linear congruential generator state
R_BASE = 2       # data-region base address
R_CURSOR = 3     # strided byte cursor into the working set
R_MASK = 4       # working-set byte mask (size - 1)
R_SHIFT = 5      # constant shift amount for extracting LCG bits
R_COND = 6       # scratch register for branch conditions
R_LCGMUL = 7     # LCG multiplier constant
R_ADDR = (8, 9, 10, 11)   # load/store address registers
R_LOOP = (12, 13, 14)     # nested loop counters
R_JTARGET = 15   # indirect-jump target
MAIN_POOL = tuple(range(16, 40))  # main-region computation registers
R_CURSORS = (40, 41, 42, 43)      # independent working-set byte cursors,
                                  # paired 1:1 with R_ADDR (ILP: four
                                  # independent address chains)
R_LCGS = (1, 44, 45, 46)          # independent LCG states (r1 doubles as
                                  # the branch-condition state)
SUB_POOL = tuple(range(48, 56))   # subroutine computation registers
R_TABLE = 56     # jump-table base address
R_C3 = 57        # constant 3 (shift for word indexing)
R_SHIFTS = (5, 58, 59, 60, 61)    # constant shift amounts (bit windows)
SHIFT_VALUES = (29, 17, 41, 7, 51)
R_LINK = 62      # call/return link register

LCG_MULTIPLIER = 6364136223846793005
LCG_INCREMENT = 40507
LCG_SHIFT = 29

DATA_BASE = 0x2000_0000
TABLE_BASE = 0x1F00_0000
JUMP_TABLE_SLOTS = 8
MAX_LOAD_OFFSET_WORDS = 32
INIT_DATA_WORDS = 4096

_INT_ALU_OPS = (Op.ADD, Op.SUB, Op.CMPLT, Op.CMPEQ)
_LOGIC_OPS = (Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR)
_FP_OPS = (Op.FADD, Op.FMUL, Op.FMA)


@dataclass
class _SymInstr:
    """An instruction whose branch target may still be a symbolic block."""

    instr: Instruction
    sym_target: Optional[Tuple[str, int]] = None  # ('main'|'sub', index)


@dataclass
class _Block:
    key: Tuple[str, int]
    items: List[_SymInstr] = field(default_factory=list)
    loop_init_len: int = 0  # instructions before the loop-back target

    def emit(self, instr: Instruction,
             sym_target: Optional[Tuple[str, int]] = None) -> None:
        self.items.append(_SymInstr(instr, sym_target))

    def __len__(self) -> int:
        return len(self.items)


class _PoolAllocator:
    """Rotating destination allocator that remembers recent results."""

    def __init__(self, pool: Tuple[int, ...], rng: DeterministicRng,
                 dep_density: float) -> None:
        self._pool = pool
        self._rng = rng
        self._dep_density = dep_density
        self._cursor = 0
        self._recent: List[int] = list(pool[:3])

    def next_dest(self) -> int:
        reg = self._pool[self._cursor % len(self._pool)]
        self._cursor += 1
        self._recent.append(reg)
        if len(self._recent) > 3:
            self._recent.pop(0)
        return reg

    def source(self) -> int:
        if self._rng.random() < self._dep_density:
            return self._rng.choice(self._recent)
        return self._rng.choice(self._pool)


class ProgramGenerator:
    """Generates one synthetic benchmark from a profile and seed."""

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.rng = DeterministicRng("workload", profile.name, seed)
        self.seed = seed
        self._addr_rotation = 0
        self._mixed_toggle = 0

    # -- public entry point ------------------------------------------
    def generate(self, verify: bool = True) -> Program:
        """Generate the program; by default, statically verify it.

        The verifier (:func:`repro.analysis.checks.gate_program`) is the
        generator's mandatory validity gate: a program with
        ERROR-severity findings (definitely-uninitialized reads,
        statically out-of-bounds stores, control running off the end)
        raises :class:`~repro.analysis.checks.ProgramVerificationError`
        instead of being handed to a machine.  ``verify=False`` skips
        the gate for callers that run the full verifier themselves.
        """
        profile = self.profile
        main_pool = _PoolAllocator(MAIN_POOL, self.rng.derive("main-pool"),
                                   profile.dep_density)
        sub_pool = _PoolAllocator(SUB_POOL, self.rng.derive("sub-pool"),
                                  profile.dep_density)

        prologue = self._build_prologue()
        main_blocks = [_Block(("main", i)) for i in range(profile.blocks)]
        sub_blocks = [_Block(("sub", i)) for i in range(profile.subroutines)]

        self._fill_subroutines(sub_blocks, sub_pool)
        self._fill_main_blocks(main_blocks, main_pool,
                               n_subs=len(sub_blocks))

        program = self._link(prologue, main_blocks, sub_blocks)
        program.metadata.update(profile=profile.name, seed=self.seed,
                                description=profile.description)
        if verify:
            _gate(program)
        return program

    # -- prologue -----------------------------------------------------
    def _build_prologue(self) -> List[Instruction]:
        profile = self.profile
        rng = self.rng.derive("prologue")
        ws_bytes = profile.working_set_words * 8
        instrs = [
            Instruction(Op.LDI, rd=R_LCGMUL, imm=LCG_MULTIPLIER),
        ]
        for reg in R_LCGS:
            instrs.append(
                Instruction(Op.LDI, rd=reg, imm=rng.randint(1, (1 << 62))))
        instrs += [
            Instruction(Op.LDI, rd=R_BASE, imm=DATA_BASE),
            Instruction(Op.LDI, rd=R_CURSOR, imm=0),
            Instruction(Op.LDI, rd=R_MASK, imm=ws_bytes - 1),
            Instruction(Op.LDI, rd=R_TABLE, imm=TABLE_BASE),
            Instruction(Op.LDI, rd=R_C3, imm=3),
        ]
        for reg, value in zip(R_SHIFTS, SHIFT_VALUES):
            instrs.append(Instruction(Op.LDI, rd=reg, imm=value))
        for offset, (reg, cursor) in enumerate(zip(R_ADDR, R_CURSORS)):
            start = (offset * ws_bytes // len(R_ADDR)) & (ws_bytes - 1)
            instrs.append(Instruction(Op.LDI, rd=reg, imm=DATA_BASE + start))
            instrs.append(Instruction(Op.LDI, rd=cursor, imm=start))
        for reg in (*MAIN_POOL, *SUB_POOL):
            instrs.append(
                Instruction(Op.LDI, rd=reg, imm=rng.randint(0, (1 << 32))))
        for reg in R_LOOP:
            # Zero the loop counters so the guarded loop tails (cmplt
            # against zero) are well-defined even when a forward branch or
            # indirect jump enters a loop body without passing the counter
            # initialisation: a zero counter fails the guard and exits the
            # loop immediately.  This also makes the dataflow verifier's
            # A1 (definitely-uninitialized read) check hold on every path.
            instrs.append(Instruction(Op.LDI, rd=reg, imm=0))
        instrs.append(Instruction(Op.LDI, rd=R_LINK, imm=0))
        return instrs

    # -- block bodies ---------------------------------------------------
    def _body_kinds(self, size: int, rng: DeterministicRng) -> List[str]:
        profile = self.profile
        kinds: List[str] = []
        for _ in range(size):
            draw = rng.random()
            if draw < profile.load_frac:
                kinds.append("load")
            elif draw < profile.load_frac + profile.store_frac:
                kinds.append("store")
            elif draw < (profile.load_frac + profile.store_frac
                         + profile.fp_frac):
                kinds.append("fp")
            elif draw < (profile.load_frac + profile.store_frac
                         + profile.fp_frac + profile.mul_frac):
                kinds.append("mul")
            else:
                kinds.append("alu")
            if rng.random() < profile.membar_frac:
                kinds.append("membar")
        # Stencil-style ordering within small windows: gather loads early,
        # compute, write results back — producing the short store bursts
        # that pressure the store queue (uniformly spread stores would
        # understate Section 7.1's effect, while sorting the whole block
        # would overstate it into runs real code never has).
        order = {"load": 0, "alu": 1, "mul": 1, "fp": 1, "membar": 2,
                 "store": 3}
        window = 10
        clustered: List[str] = []
        for start in range(0, len(kinds), window):
            chunk = kinds[start:start + window]
            chunk.sort(key=lambda kind: order[kind])
            clustered.extend(chunk)
        return clustered

    def _emit_addr_refresh(self, block: _Block, rng: DeterministicRng) -> int:
        """Advance a working-set cursor and point an address register at it.

        Four independent cursor/address register pairs rotate, so address
        arithmetic forms four short dependence chains instead of one long
        serial one — matching the independent array streams of the codes
        being modelled.
        """
        profile = self.profile
        slot = self._addr_rotation % len(R_ADDR)
        self._addr_rotation += 1
        reg = R_ADDR[slot]
        cursor = R_CURSORS[slot]
        pattern = profile.access_pattern
        if pattern == "mixed":
            self._mixed_toggle += 1
            pattern = "strided" if self._mixed_toggle % 2 else "random"
        if pattern == "strided":
            stride = profile.stride_words * 8
            block.emit(Instruction(Op.ADDI, rd=cursor, ra=cursor, imm=stride))
            block.emit(Instruction(Op.AND, rd=cursor, ra=cursor, rb=R_MASK))
            block.emit(Instruction(Op.ADD, rd=reg, ra=R_BASE, rb=cursor))
        else:
            state = R_LCGS[slot]
            self._emit_lcg_step(block, state)
            block.emit(Instruction(Op.SHR, rd=cursor, ra=state,
                                   rb=self._shift_reg(rng)))
            block.emit(Instruction(Op.AND, rd=cursor, ra=cursor, rb=R_MASK))
            block.emit(Instruction(Op.ADD, rd=reg, ra=R_BASE, rb=cursor))
        return reg

    def _emit_lcg_step(self, block: _Block, state: int = R_LCG) -> None:
        block.emit(Instruction(Op.MUL, rd=state, ra=state, rb=R_LCGMUL))
        block.emit(Instruction(Op.ADDI, rd=state, ra=state, imm=LCG_INCREMENT))

    def _emit_body(self, block: _Block, pool: _PoolAllocator, size: int,
                   rng: DeterministicRng) -> None:
        profile = self.profile
        kinds = self._body_kinds(size, rng)
        addr_reg = R_ADDR[self._addr_rotation % len(R_ADDR)]
        if any(kind in ("load", "store") for kind in kinds):
            # Refresh the cursor only some of the time; reusing a previous
            # address register models spatial locality and keeps address
            # arithmetic from dominating the mix.
            if rng.random() < 0.6:
                addr_reg = self._emit_addr_refresh(block, rng)
        for kind in kinds:
            if kind == "load":
                offset = 8 * rng.randint(0, MAX_LOAD_OFFSET_WORDS - 1)
                block.emit(Instruction(Op.LD, rd=pool.next_dest(),
                                       ra=addr_reg, imm=offset))
            elif kind == "store":
                offset = 8 * rng.randint(0, MAX_LOAD_OFFSET_WORDS - 1)
                op = (Op.STH if rng.random() < profile.partial_store_frac
                      else Op.ST)
                if op is Op.STH and rng.random() < 0.5:
                    offset += 4  # store into the high half of the word
                block.emit(Instruction(op, ra=addr_reg, imm=offset,
                                       rb=pool.source()))
            elif kind == "fp":
                op = Op.FDIV if rng.random() < 0.05 else rng.choice(_FP_OPS)
                block.emit(Instruction(op, rd=pool.next_dest(),
                                       ra=pool.source(), rb=pool.source()))
            elif kind == "mul":
                block.emit(Instruction(Op.MUL, rd=pool.next_dest(),
                                       ra=pool.source(), rb=pool.source()))
            elif kind == "membar":
                block.emit(Instruction(Op.MEMBAR))
            else:
                use_logic = rng.random() < 0.45
                op = rng.choice(_LOGIC_OPS if use_logic else _INT_ALU_OPS)
                block.emit(Instruction(op, rd=pool.next_dest(),
                                       ra=pool.source(), rb=pool.source()))

    # -- terminators ----------------------------------------------------
    def _shift_reg(self, rng: DeterministicRng) -> int:
        return rng.choice(R_SHIFTS)

    def _emit_random_branch(self, block: _Block, target: Tuple[str, int],
                            rng: DeterministicRng) -> None:
        """A genuinely 50/50 LCG-driven forward branch."""
        self._emit_lcg_step(block)
        block.emit(Instruction(Op.SHR, rd=R_COND, ra=R_LCG,
                               rb=self._shift_reg(rng)))
        block.emit(Instruction(Op.ANDI, rd=R_COND, ra=R_COND, imm=1))
        block.emit(Instruction(Op.BNEZ, ra=R_COND, target=0), sym_target=target)

    def _emit_biased_branch(self, block: _Block, target: Tuple[str, int],
                            rng: DeterministicRng) -> None:
        """A rarely-taken (~1/16) forward branch reading current LCG bits."""
        block.emit(Instruction(Op.SHR, rd=R_COND, ra=R_LCG,
                               rb=self._shift_reg(rng)))
        block.emit(Instruction(Op.ANDI, rd=R_COND, ra=R_COND, imm=15))
        block.emit(Instruction(Op.BEQZ, ra=R_COND, target=0), sym_target=target)

    def _emit_indirect_jump(self, block: _Block,
                            rng: DeterministicRng) -> None:
        """Jump through the table at R_TABLE, index driven by the LCG."""
        self._emit_lcg_step(block)
        block.emit(Instruction(Op.SHR, rd=R_COND, ra=R_LCG,
                               rb=self._shift_reg(rng)))
        block.emit(Instruction(Op.ANDI, rd=R_COND, ra=R_COND,
                               imm=JUMP_TABLE_SLOTS - 1))
        block.emit(Instruction(Op.SHL, rd=R_COND, ra=R_COND, rb=R_C3))
        block.emit(Instruction(Op.ADD, rd=R_COND, ra=R_TABLE, rb=R_COND))
        block.emit(Instruction(Op.LD, rd=R_JTARGET, ra=R_COND, imm=0))
        block.emit(Instruction(Op.JMP, ra=R_JTARGET))

    def _emit_loop_tail(self, block: _Block, head: int, reg: int) -> None:
        """Decrement-and-branch with a signed guard.

        The guard (``0 < counter``) rather than a plain non-zero test makes
        the loop safe even when control arrives via an indirect jump without
        passing the counter initialisation: any non-positive stale counter
        exits immediately instead of wrapping around 2^64.
        """
        block.emit(Instruction(Op.ADDI, rd=reg, ra=reg, imm=-1))
        block.emit(Instruction(Op.CMPLT, rd=R_COND, ra=0, rb=reg))
        block.emit(Instruction(Op.BNEZ, ra=R_COND, target=0),
                   sym_target=("loop", head))

    # -- main region ------------------------------------------------------
    def _fill_main_blocks(self, blocks: List[_Block], pool: _PoolAllocator,
                          n_subs: int) -> None:
        """Emit bodies and control flow for the main region.

        Loops are properly nested: a stack of open loops is maintained and a
        new loop may only open if its tail falls strictly inside the
        innermost open loop.  The loop-back branch targets the instruction
        *after* the counter initialisation (the ``("loop", head)`` symbol),
        so trip counts are respected.
        """
        profile = self.profile
        rng = self.rng.derive("main")
        n = len(blocks)
        loop_tails: Dict[int, Tuple[int, int]] = {}   # tail -> (head, reg)
        loop_heads: Dict[int, Tuple[int, int]] = {}   # head -> (reg, trip)
        open_tails: List[int] = []
        for index in range(n - 1):
            while open_tails and open_tails[-1] <= index:
                open_tails.pop()
            if len(open_tails) >= len(R_LOOP) or index in loop_tails:
                continue
            if rng.random() < profile.loop_frac:
                tail = index + rng.randint(1, 3)
                limit = open_tails[-1] if open_tails else n - 1
                tail = min(tail, limit - 1) if open_tails else min(tail, n - 1)
                if tail <= index or tail in loop_tails:
                    continue
                reg = R_LOOP[len(open_tails)]
                trip = rng.randint(*profile.loop_trip)
                loop_heads[index] = (reg, trip)
                loop_tails[tail] = (index, reg)
                open_tails.append(tail)

        for i, block in enumerate(blocks):
            if i in loop_heads:
                reg, trip = loop_heads[i]
                block.emit(Instruction(Op.LDI, rd=reg, imm=trip))
                block.loop_init_len = len(block)
            self._emit_body(block, pool, rng.randint(*profile.block_size), rng)
            if i in loop_tails:
                head, reg = loop_tails[i]
                self._emit_loop_tail(block, head, reg)
            elif i == n - 1:
                block.emit(Instruction(Op.BR, target=0), sym_target=("main", 0))
            else:
                self._emit_terminator(block, i, n, n_subs, rng)

    def _emit_terminator(self, block: _Block, index: int, n_blocks: int,
                         n_subs: int, rng: DeterministicRng) -> None:
        profile = self.profile
        forward = ("main", (index + 1 + rng.randint(1, 3)) % n_blocks)
        # Normalise the non-loop terminator kinds over the non-loop mass, so
        # the requested branch mix is honoured regardless of how many blocks
        # the loop scheduler actually claimed.
        mass = max(1e-9, 1.0 - profile.loop_frac)
        draw = rng.random() * mass
        if draw < profile.random_branch_frac:
            self._emit_random_branch(block, forward, rng)
        elif draw < profile.random_branch_frac + profile.biased_branch_frac:
            self._emit_biased_branch(block, forward, rng)
        elif (draw < profile.random_branch_frac + profile.biased_branch_frac
                + profile.call_frac and n_subs > 0):
            target = ("sub", rng.randint(0, n_subs - 1))
            block.emit(Instruction(Op.CALL, rd=R_LINK, target=0),
                       sym_target=target)
        elif (draw < profile.random_branch_frac + profile.biased_branch_frac
                + profile.call_frac + profile.indirect_frac):
            self._emit_indirect_jump(block, rng)
        elif rng.random() < 0.3:
            block.emit(Instruction(Op.BR, target=0), sym_target=forward)
        # else: plain fallthrough.

    # -- subroutines ------------------------------------------------------
    def _fill_subroutines(self, blocks: List[_Block],
                          pool: _PoolAllocator) -> None:
        rng = self.rng.derive("subs")
        for block in blocks:
            size = rng.randint(*self.profile.sub_block_size)
            self._emit_body(block, pool, size, rng)
            block.emit(Instruction(Op.RET, ra=R_LINK))

    # -- final layout ------------------------------------------------------
    def _link(self, prologue: List[Instruction], main_blocks: List[_Block],
              sub_blocks: List[_Block]) -> Program:
        starts: Dict[Tuple[str, int], int] = {}
        pc = len(prologue)
        for block in (*main_blocks, *sub_blocks):
            starts[block.key] = pc
            if block.key[0] == "main":
                # Loop-back branches land after the counter initialisation.
                starts[("loop", block.key[1])] = pc + block.loop_init_len
            pc += len(block)

        instructions = list(prologue)
        for block in (*main_blocks, *sub_blocks):
            for item in block.items:
                instr = item.instr
                if item.sym_target is not None:
                    instr = dataclasses.replace(
                        instr, target=starts[item.sym_target])
                instructions.append(instr)

        initial_memory, table_targets = self._build_initial_memory(
            starts, len(main_blocks))
        name = (self.profile.name if self.seed == 0
                else f"{self.profile.name}#{self.seed}")
        program = Program(
            name=name,
            instructions=instructions,
            initial_memory=initial_memory,
            entry=0,
        )
        # Structural facts the static verifier consumes
        # (repro.analysis.checks documents each key).  The data segment
        # covers the working set plus the worst-case body offset: a
        # cursor may sit on the last working-set word while the body
        # addresses up to MAX_LOAD_OFFSET_WORDS beyond it.
        ws_bytes = self.profile.working_set_words * 8
        program.metadata.update(
            runs_forever=True,  # main region loops back to block 0
            jump_table_targets=list(table_targets),
            data_segments=[
                (DATA_BASE, DATA_BASE + ws_bytes
                 + 8 * MAX_LOAD_OFFSET_WORDS),
                (TABLE_BASE, TABLE_BASE + 8 * JUMP_TABLE_SLOTS),
            ],
        )
        return program

    def _build_initial_memory(
            self, starts: Dict[Tuple[str, int], int],
            n_main: int) -> Tuple[Dict[int, int], List[int]]:
        rng = self.rng.derive("memory")
        memory: Dict[int, int] = {}
        init_words = min(self.profile.working_set_words, INIT_DATA_WORDS)
        for i in range(init_words):
            memory[DATA_BASE + 8 * i] = rng.randint(0, (1 << 64) - 1)
        table_targets = [starts[("main", rng.randint(0, n_main - 1))]
                         for _ in range(JUMP_TABLE_SLOTS)]
        for slot, target in enumerate(table_targets):
            memory[TABLE_BASE + 8 * slot] = target
        return memory, table_targets


#: (profile name, seed) pairs already certified by the gate in this
#: process.  Generation is deterministic, so one verification per pair
#: suffices; the cache keeps the mandatory gate O(1) for the test suite
#: and the campaign workers, which regenerate the same workloads often.
_VERIFIED: set = set()


def _gate(program: Program) -> None:
    key = (program.metadata.get("profile"), program.metadata.get("seed"))
    if key in _VERIFIED:
        return
    # Imported lazily: repro.analysis depends on repro.isa, not the
    # other way around (the gate is the one sanctioned back-reference).
    from repro.analysis.checks import gate_program

    gate_program(program)
    _VERIFIED.add(key)


def generate_program(profile: WorkloadProfile, seed: int = 0,
                     verify: bool = True) -> Program:
    """Generate the synthetic benchmark for ``profile`` with ``seed``."""
    return ProgramGenerator(profile, seed).generate(verify=verify)


def generate_benchmark(name: str, seed: int = 0,
                       verify: bool = True) -> Program:
    """Generate one of the named SPEC CPU95-like benchmarks."""
    from repro.isa.profiles import get_profile

    return generate_program(get_profile(name), seed, verify=verify)
