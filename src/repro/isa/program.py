"""Static program representation.

A :class:`Program` is the unit of work the machines run: an instruction
sequence plus initial data-memory contents.  Each *logical thread* in a
run gets its own address-space id, so multiprogrammed workloads never
interfere through memory.
"""

from dataclasses import dataclass, field
from typing import Dict, List

from repro.isa.instructions import INSTRUCTION_BYTES, Instruction


@dataclass
class Program:
    """An immutable instruction sequence with initial data memory.

    ``code_base`` is the byte address of instruction 0 (used by the
    instruction cache); program counters count instructions, not bytes.
    """

    name: str
    instructions: List[Instruction]
    initial_memory: Dict[int, int] = field(default_factory=dict)
    entry: int = 0
    code_base: int = 0x1000_0000
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError(f"program {self.name!r} has no instructions")
        if not 0 <= self.entry < len(self.instructions):
            raise ValueError(f"program {self.name!r}: entry {self.entry} out of range")
        for index, instr in enumerate(self.instructions):
            if instr.target is not None and not (
                0 <= instr.target < len(self.instructions)
            ):
                raise ValueError(
                    f"program {self.name!r}: instruction {index} ({instr}) "
                    f"targets {instr.target}, outside [0, {len(self.instructions)})"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at instruction-index ``pc``."""
        return self.instructions[pc]

    def in_range(self, pc: int) -> bool:
        return 0 <= pc < len(self.instructions)

    def pc_to_addr(self, pc: int) -> int:
        """Byte address of instruction ``pc`` (for the instruction cache)."""
        return self.code_base + pc * INSTRUCTION_BYTES

    @property
    def static_branch_count(self) -> int:
        return sum(1 for instr in self.instructions if instr.is_control)

    @property
    def static_load_count(self) -> int:
        return sum(1 for instr in self.instructions if instr.is_load)

    @property
    def static_store_count(self) -> int:
        return sum(1 for instr in self.instructions if instr.is_store)
