"""Architectural (functional) executor for RISC-R.

This is the golden reference model: it defines the ISA's semantics.
The out-of-order pipeline must retire exactly the state this executor
produces (tests assert that), and the redundant threads of an RMT
machine must produce outputs identical to it in the absence of faults.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import NUM_ARCH_REGS, ZERO_REG, Instruction, Op
from repro.isa.program import Program
from repro.util.bits import MASK64, to_signed, to_unsigned

WORD_BYTES = 8
WORD_MASK = ~(WORD_BYTES - 1) & MASK64


def align_word(addr: int) -> int:
    """Clamp an arbitrary 64-bit value to a word-aligned address."""
    return addr & WORD_MASK


def alu_result(instr: Instruction, a: int, b: int, c: int = 0) -> int:
    """Compute the 64-bit result of a register-writing instruction.

    ``a``/``b`` are the ra/rb source values, ``c`` the old rd value (only
    FMA reads it).  Shared between the functional executor and the
    pipeline's execute stage so both use identical semantics.
    """
    op = instr.op
    if op is Op.ADD:
        return to_unsigned(a + b)
    if op is Op.SUB:
        return to_unsigned(a - b)
    if op is Op.MUL:
        return to_unsigned(a * b)
    if op is Op.ADDI:
        return to_unsigned(a + instr.imm)
    if op is Op.LDI:
        return to_unsigned(instr.imm)
    if op is Op.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Op.CMPEQ:
        return 1 if a == b else 0
    if op is Op.AND:
        return a & b
    if op is Op.OR:
        return a | b
    if op is Op.XOR:
        return a ^ b
    if op is Op.SHL:
        return to_unsigned(a << (b & 63))
    if op is Op.SHR:
        return (a & MASK64) >> (b & 63)
    if op is Op.ANDI:
        return a & to_unsigned(instr.imm)
    if op is Op.XORI:
        return a ^ to_unsigned(instr.imm)
    if op is Op.FADD:
        return to_unsigned(a + b)
    if op is Op.FMUL:
        return to_unsigned(a * b)
    if op is Op.FMA:
        return to_unsigned(a * b + c)
    if op is Op.FDIV:
        return to_unsigned(a // (b | 1))
    raise ValueError(f"alu_result called for non-ALU op {op.name}")


def merge_partial_store(unaligned_addr: int, old_word: int, value: int) -> int:
    """Merge a 4-byte STH value into an 8-byte memory word.

    Bit 2 of the (pre-alignment) address selects the high or low half;
    the low 32 bits of ``value`` are written there.
    """
    half = (value & 0xFFFF_FFFF)
    if unaligned_addr & 4:
        return (old_word & 0x0000_0000_FFFF_FFFF) | (half << 32)
    return (old_word & 0xFFFF_FFFF_0000_0000) | half


def branch_taken(instr: Instruction, a: int) -> bool:
    """Resolve a conditional/unconditional control instruction."""
    op = instr.op
    if op is Op.BEQZ:
        return a == 0
    if op is Op.BNEZ:
        return a != 0
    if op in (Op.BR, Op.JMP, Op.CALL, Op.RET):
        return True
    raise ValueError(f"branch_taken called for non-control op {op.name}")


@dataclass
class StepResult:
    """What one architecturally-executed instruction did."""

    pc: int
    instr: Instruction
    next_pc: int
    taken: bool = False
    load: Optional[Tuple[int, int]] = None   # (address, value)
    store: Optional[Tuple[int, int]] = None  # (address, value)
    halted: bool = False


@dataclass
class ArchState:
    """Architectural register file, memory image, and PC of one thread."""

    pc: int = 0
    regs: List[int] = field(default_factory=lambda: [0] * NUM_ARCH_REGS)
    memory: Dict[int, int] = field(default_factory=dict)
    halted: bool = False

    def read_reg(self, index: int) -> int:
        return 0 if index == ZERO_REG else self.regs[index]

    def write_reg(self, index: int, value: int) -> None:
        if index != ZERO_REG:
            self.regs[index] = to_unsigned(value)

    def read_mem(self, addr: int) -> int:
        return self.memory.get(align_word(addr), 0)

    def write_mem(self, addr: int, value: int) -> None:
        self.memory[align_word(addr)] = to_unsigned(value)


class FunctionalExecutor:
    """Executes a :class:`Program` one instruction at a time."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self.state = ArchState(pc=program.entry,
                               memory=dict(program.initial_memory))
        self.retired = 0

    def step(self) -> StepResult:
        """Execute and retire one instruction; return what it did."""
        state = self.state
        if state.halted:
            raise RuntimeError(f"program {self.program.name!r} already halted")
        pc = state.pc
        if not self.program.in_range(pc):
            raise RuntimeError(
                f"program {self.program.name!r} ran off code at pc={pc}")
        instr = self.program.fetch(pc)
        result = StepResult(pc=pc, instr=instr, next_pc=pc + 1)
        op = instr.op

        if op in (Op.NOP, Op.MEMBAR):
            pass
        elif op is Op.HALT:
            state.halted = True
            result.halted = True
            result.next_pc = pc
        elif op is Op.LD:
            addr = align_word(state.read_reg(instr.ra) + instr.imm)
            value = state.read_mem(addr)
            state.write_reg(instr.rd, value)
            result.load = (addr, value)
        elif op is Op.ST:
            addr = align_word(state.read_reg(instr.ra) + instr.imm)
            value = state.read_reg(instr.rb)
            state.write_mem(addr, value)
            result.store = (addr, value)
        elif op is Op.STH:
            raw_addr = to_unsigned(state.read_reg(instr.ra) + instr.imm)
            addr = align_word(raw_addr)
            merged = merge_partial_store(raw_addr, state.read_mem(addr),
                                         state.read_reg(instr.rb))
            state.write_mem(addr, merged)
            result.store = (addr, merged)
        elif instr.is_control:
            a = state.read_reg(instr.ra)
            taken = branch_taken(instr, a)
            result.taken = taken
            if op is Op.CALL:
                state.write_reg(instr.rd, pc + 1)
                result.next_pc = instr.target
            elif op in (Op.JMP, Op.RET):
                result.next_pc = a % len(self.program)
            elif taken:
                result.next_pc = instr.target
        else:
            a = state.read_reg(instr.ra)
            b = state.read_reg(instr.rb)
            c = state.read_reg(instr.rd)
            state.write_reg(instr.rd, alu_result(instr, a, b, c))

        state.pc = result.next_pc
        self.retired += 1
        return result

    def run(self, max_instructions: int) -> List[StepResult]:
        """Execute up to ``max_instructions`` (stops early on HALT)."""
        results: List[StepResult] = []
        for _ in range(max_instructions):
            if self.state.halted:
                break
            results.append(self.step())
        return results
