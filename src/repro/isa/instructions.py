"""The RISC-R instruction set.

A small 64-bit RISC ISA standing in for Alpha.  The RMT mechanisms in
the paper never depend on opcode semantics beyond the load / store /
control-flow / memory-barrier classification, so the set below is chosen
to exercise every pipeline structure: integer and logic units, the
floating-point pool (modelled as long-latency integer arithmetic so
results stay exactly comparable between redundant threads), loads,
stores, conditional branches, calls/returns (return-address stack), and
indirect jumps (jump target predictor).

Register convention: 64 architectural registers per thread; ``r0`` is
hardwired to zero.
"""

import enum
from dataclasses import dataclass, field
from typing import Optional

NUM_ARCH_REGS = 64
ZERO_REG = 0
INSTRUCTION_BYTES = 4


class Op(enum.Enum):
    """Opcodes, grouped by the functional-unit class that executes them."""

    # Integer arithmetic (integer unit pool).
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    ADDI = enum.auto()
    LDI = enum.auto()       # rd <- imm
    CMPLT = enum.auto()     # rd <- (ra <s rb)
    CMPEQ = enum.auto()     # rd <- (ra == rb)
    # Logic / shift (logic unit pool).
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    ANDI = enum.auto()
    XORI = enum.auto()
    NOP = enum.auto()
    # Floating point (FP unit pool; integer-exact semantics).
    FADD = enum.auto()
    FMUL = enum.auto()
    FMA = enum.auto()       # rd <- ra * rb + rd  (reads rd as third source)
    FDIV = enum.auto()
    # Memory (memory unit pool).
    LD = enum.auto()        # rd <- MEM[ra + imm]
    ST = enum.auto()        # MEM[ra + imm] <- rb (full 8-byte word)
    STH = enum.auto()       # 4-byte store into half of the word at ra + imm
    MEMBAR = enum.auto()
    # Control flow.
    BEQZ = enum.auto()      # if ra == 0: pc <- target
    BNEZ = enum.auto()      # if ra != 0: pc <- target
    BR = enum.auto()        # pc <- target (unconditional)
    JMP = enum.auto()       # pc <- ra (indirect)
    CALL = enum.auto()      # rd <- pc + 1; pc <- target
    RET = enum.auto()       # pc <- ra (return, pops RAS)
    HALT = enum.auto()


class FuClass(enum.Enum):
    """Functional-unit pools of the EBOX/FBOX/MBOX (Table 1)."""

    INT = "int"
    LOGIC = "logic"
    MEM = "mem"
    FP = "fp"


_FU_CLASS = {
    Op.ADD: FuClass.INT,
    Op.SUB: FuClass.INT,
    Op.MUL: FuClass.INT,
    Op.ADDI: FuClass.INT,
    Op.LDI: FuClass.INT,
    Op.CMPLT: FuClass.INT,
    Op.CMPEQ: FuClass.INT,
    Op.AND: FuClass.LOGIC,
    Op.OR: FuClass.LOGIC,
    Op.XOR: FuClass.LOGIC,
    Op.SHL: FuClass.LOGIC,
    Op.SHR: FuClass.LOGIC,
    Op.ANDI: FuClass.LOGIC,
    Op.XORI: FuClass.LOGIC,
    Op.NOP: FuClass.LOGIC,
    Op.FADD: FuClass.FP,
    Op.FMUL: FuClass.FP,
    Op.FMA: FuClass.FP,
    Op.FDIV: FuClass.FP,
    Op.LD: FuClass.MEM,
    Op.ST: FuClass.MEM,
    Op.STH: FuClass.MEM,
    Op.MEMBAR: FuClass.MEM,
    # Control flow resolves on the integer pool.
    Op.BEQZ: FuClass.INT,
    Op.BNEZ: FuClass.INT,
    Op.BR: FuClass.INT,
    Op.JMP: FuClass.INT,
    Op.CALL: FuClass.INT,
    Op.RET: FuClass.INT,
    Op.HALT: FuClass.INT,
}

# Execute latency (cycles in the EBOX/FBOX) per opcode; memory latency is
# modelled by the MBOX, so LD/ST carry only their issue latency here.
_EXEC_LATENCY = {
    Op.MUL: 7,
    Op.FADD: 4,
    Op.FMUL: 4,
    Op.FMA: 4,
    Op.FDIV: 12,
}
DEFAULT_EXEC_LATENCY = 1

_CONTROL_OPS = {Op.BEQZ, Op.BNEZ, Op.BR, Op.JMP, Op.CALL, Op.RET}
_CONDITIONAL_OPS = {Op.BEQZ, Op.BNEZ}
_INDIRECT_OPS = {Op.JMP, Op.RET}


@dataclass(frozen=True)
class Instruction:
    """A static RISC-R instruction.

    ``target`` is an instruction index (the ISA's PCs count instructions;
    byte addresses are derived as ``pc * INSTRUCTION_BYTES``).
    """

    op: Op
    rd: int = ZERO_REG
    ra: int = ZERO_REG
    rb: int = ZERO_REG
    imm: int = 0
    target: Optional[int] = None
    label: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        for name, reg in (("rd", self.rd), ("ra", self.ra), ("rb", self.rb)):
            if not 0 <= reg < NUM_ARCH_REGS:
                raise ValueError(f"{self.op.name}: {name} out of range: {reg}")
        if self.op in _CONTROL_OPS and self.op not in _INDIRECT_OPS:
            if self.target is None:
                raise ValueError(f"{self.op.name} requires a target")

    # -- classification ------------------------------------------------
    @property
    def fu_class(self) -> FuClass:
        return _FU_CLASS[self.op]

    @property
    def exec_latency(self) -> int:
        return _EXEC_LATENCY.get(self.op, DEFAULT_EXEC_LATENCY)

    @property
    def is_load(self) -> bool:
        return self.op is Op.LD

    @property
    def is_store(self) -> bool:
        return self.op in (Op.ST, Op.STH)

    @property
    def is_partial_store(self) -> bool:
        """True for sub-word stores that cannot fully forward to a word load."""
        return self.op is Op.STH

    @property
    def is_membar(self) -> bool:
        return self.op is Op.MEMBAR

    @property
    def is_control(self) -> bool:
        return self.op in _CONTROL_OPS

    @property
    def is_conditional(self) -> bool:
        return self.op in _CONDITIONAL_OPS

    @property
    def is_indirect(self) -> bool:
        return self.op in _INDIRECT_OPS

    @property
    def is_call(self) -> bool:
        return self.op is Op.CALL

    @property
    def is_return(self) -> bool:
        return self.op is Op.RET

    @property
    def is_halt(self) -> bool:
        return self.op is Op.HALT

    @property
    def writes_reg(self) -> bool:
        if self.op in (Op.ST, Op.STH, Op.MEMBAR, Op.NOP, Op.HALT, Op.BEQZ,
                       Op.BNEZ, Op.BR, Op.JMP, Op.RET):
            return False
        return self.rd != ZERO_REG

    @property
    def source_regs(self) -> tuple:
        """Architectural registers read by this instruction."""
        if self.op in (Op.LDI, Op.NOP, Op.HALT, Op.BR, Op.CALL, Op.MEMBAR):
            return ()
        if self.op in (Op.ADDI, Op.ANDI, Op.XORI, Op.LD, Op.BEQZ, Op.BNEZ,
                       Op.JMP, Op.RET):
            return (self.ra,)
        if self.op in (Op.ST, Op.STH):
            return (self.ra, self.rb)
        if self.op is Op.FMA:
            return (self.ra, self.rb, self.rd)
        return (self.ra, self.rb)

    def __str__(self) -> str:
        parts = [self.op.name.lower()]
        if self.writes_reg or self.op is Op.FMA:
            parts.append(f"r{self.rd}")
        if self.op in (Op.ADD, Op.SUB, Op.MUL, Op.AND, Op.OR, Op.XOR, Op.SHL,
                       Op.SHR, Op.CMPLT, Op.CMPEQ, Op.FADD, Op.FMUL, Op.FMA,
                       Op.FDIV):
            parts += [f"r{self.ra}", f"r{self.rb}"]
        elif self.op in (Op.ADDI, Op.ANDI, Op.XORI):
            parts += [f"r{self.ra}", str(self.imm)]
        elif self.op is Op.LDI:
            parts.append(str(self.imm))
        elif self.op is Op.LD:
            parts.append(f"r{self.ra}+{self.imm}")
        elif self.op in (Op.ST, Op.STH):
            parts += [f"r{self.ra}+{self.imm}", f"r{self.rb}"]
        elif self.op in (Op.BEQZ, Op.BNEZ):
            parts += [f"r{self.ra}", f"@{self.target}"]
        elif self.op in (Op.BR, Op.CALL):
            parts.append(f"@{self.target}")
        elif self.op in (Op.JMP, Op.RET):
            parts.append(f"r{self.ra}")
        return " ".join(parts)
