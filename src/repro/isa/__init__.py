"""RISC-R: the instruction set, programs, and synthetic workloads."""

from repro.isa.assembler import AssemblyError, assemble
from repro.isa.executor import (ArchState, FunctionalExecutor, StepResult,
                                align_word, alu_result, branch_taken,
                                merge_partial_store)
from repro.isa.generator import generate_benchmark, generate_program
from repro.isa.instructions import (INSTRUCTION_BYTES, NUM_ARCH_REGS,
                                    ZERO_REG, FuClass, Instruction, Op)
from repro.isa.profiles import (FOUR_THREAD_POOL, SPEC95_NAMES,
                                SPEC95_PROFILES, TWO_THREAD_POOL,
                                WorkloadProfile, get_profile)
from repro.isa.program import Program

__all__ = [
    "assemble",
    "AssemblyError",
    "ArchState",
    "FunctionalExecutor",
    "StepResult",
    "align_word",
    "alu_result",
    "branch_taken",
    "merge_partial_store",
    "generate_benchmark",
    "generate_program",
    "Instruction",
    "Op",
    "FuClass",
    "INSTRUCTION_BYTES",
    "NUM_ARCH_REGS",
    "ZERO_REG",
    "Program",
    "WorkloadProfile",
    "get_profile",
    "SPEC95_NAMES",
    "SPEC95_PROFILES",
    "TWO_THREAD_POOL",
    "FOUR_THREAD_POOL",
]
