"""A tiny two-pass assembler for RISC-R.

Used by tests and examples to write small, exactly-predictable programs.
Syntax, one instruction per line (``;`` starts a comment)::

    .data  <addr> <value>        ; initial data memory word
    label:
        ldi   r1, 100
        add   r2, r1, r3
        addi  r1, r1, -1
        ld    r4, r1, 8          ; r4 <- MEM[r1 + 8]
        st    r1, 8, r4          ; MEM[r1 + 8] <- r4
        beqz  r1, label
        call  r30, subroutine
        ret   r30
        halt

Directives understood by the static verifier (:mod:`repro.analysis`)::

    .segment <lo> <hi>           ; declare a legal store range [lo, hi)
    .shared  <lo> <hi>           ; declare a cross-thread-visible range

Segment declarations are validated at assembly time: two ``.segment``
(or two ``.shared``) ranges may not overlap each other, and every
``.shared`` range must lie inside one declared ``.segment`` (a shared
window that stores cannot legally reach is a contradiction the
verifier would otherwise silently ignore).  A ``.shared`` range *may*
coincide with a ``.segment`` — that is the normal way to mark a data
segment cross-thread visible.  Violations are line-numbered
:class:`AssemblyError`\\ s, like every other syntax error.

Labels must be unique; branching to an undefined label is a
line-numbered :class:`AssemblyError` (not a late KeyError), so the CFG
builder can always assume well-formed targets.
"""

import re
from typing import Dict, List, Tuple

from repro.isa.instructions import Instruction, Op
from repro.isa.program import Program


class AssemblyError(Exception):
    """Raised on malformed assembly input."""


_REG_RE = re.compile(r"^r(\d{1,2})$")

_THREE_REG = {
    "add": Op.ADD, "sub": Op.SUB, "mul": Op.MUL, "and": Op.AND, "or": Op.OR,
    "xor": Op.XOR, "shl": Op.SHL, "shr": Op.SHR, "cmplt": Op.CMPLT,
    "cmpeq": Op.CMPEQ, "fadd": Op.FADD, "fmul": Op.FMUL, "fma": Op.FMA,
    "fdiv": Op.FDIV,
}
_REG_REG_IMM = {"addi": Op.ADDI, "andi": Op.ANDI, "xori": Op.XORI}
_NO_OPERAND = {"nop": Op.NOP, "membar": Op.MEMBAR, "halt": Op.HALT}
_COND_BRANCH = {"beqz": Op.BEQZ, "bnez": Op.BNEZ}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token.strip())
    if not match:
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    reg = int(match.group(1))
    if reg >= 64:
        raise AssemblyError(f"line {line_no}: register out of range: {token!r}")
    return reg


def _parse_imm(token: str, line_no: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError as exc:
        raise AssemblyError(f"line {line_no}: bad immediate {token!r}") from exc


_SEGMENT_KIND = {".segment": "data_segments", ".shared": "shared_segments"}


def _validate_segments(
        ranges: Dict[str, List[Tuple[int, int, int]]]) -> None:
    """Reject overlapping ranges and ``.shared`` outside any segment.

    ``ranges`` maps the directive name to ``(lo, hi, line_no)`` triples
    in declaration order.  Overlap is checked *within* each directive
    kind only: a ``.shared`` range coinciding with a ``.segment`` range
    is the intended way to mark a data segment cross-thread visible.
    """
    for directive, declared in ranges.items():
        by_lo = sorted(declared)
        for (lo_a, hi_a, line_a), (lo_b, hi_b, line_b) in zip(
                by_lo, by_lo[1:]):
            if lo_b < hi_a:
                first, second = sorted(((line_a, lo_a, hi_a),
                                        (line_b, lo_b, hi_b)))
                raise AssemblyError(
                    f"line {second[0]}: {directive} range "
                    f"[{second[1]:#x}, {second[2]:#x}) overlaps the "
                    f"{directive} [{first[1]:#x}, {first[2]:#x}) "
                    f"declared on line {first[0]}")
    data_ranges = ranges.get(".segment", [])
    for lo, hi, line_no in ranges.get(".shared", []):
        if not any(seg_lo <= lo and hi <= seg_hi
                   for seg_lo, seg_hi, _ in data_ranges):
            raise AssemblyError(
                f"line {line_no}: .shared range [{lo:#x}, {hi:#x}) is "
                f"not contained in any declared .segment; shared "
                f"windows must be store-reachable")


def assemble(source: str, name: str = "asm") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    labels: Dict[str, int] = {}
    label_lines: Dict[str, int] = {}
    pending: List[Tuple[int, str, List[str]]] = []  # (line_no, mnemonic, args)
    data: Dict[int, int] = {}
    seg_ranges: Dict[str, List[Tuple[int, int, int]]] = {}

    # Pass 1: strip comments, collect labels and raw instructions.
    index = 0
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".data"):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(f"line {line_no}: .data needs addr and value")
            data[_parse_imm(parts[1], line_no)] = _parse_imm(parts[2], line_no)
            continue
        if line.startswith((".segment", ".shared")):
            parts = line.split()
            if len(parts) != 3:
                raise AssemblyError(
                    f"line {line_no}: {parts[0]} needs lo and hi addresses")
            lo = _parse_imm(parts[1], line_no)
            hi = _parse_imm(parts[2], line_no)
            if not 0 <= lo < hi:
                raise AssemblyError(
                    f"line {line_no}: {parts[0]} range [{lo}, {hi}) is empty "
                    f"or negative")
            seg_ranges.setdefault(parts[0], []).append((lo, hi, line_no))
            continue
        while ":" in line:
            label, _, rest = line.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {line_no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(
                    f"line {line_no}: duplicate label {label!r} "
                    f"(first defined on line {label_lines[label]})")
            labels[label] = index
            label_lines[label] = line_no
            line = rest.strip()
        if not line:
            continue
        mnemonic, _, operand_text = line.partition(" ")
        args = [arg.strip() for arg in operand_text.split(",")] if operand_text else []
        pending.append((line_no, mnemonic.lower(), args))
        index += 1

    def resolve(token: str, line_no: int) -> int:
        token = token.strip()
        if token in labels:
            return labels[token]
        if token.isidentifier():
            known = ", ".join(sorted(labels)) or "(none defined)"
            raise AssemblyError(
                f"line {line_no}: branch to undefined label {token!r}; "
                f"known labels: {known}")
        target = _parse_imm(token, line_no)
        if not 0 <= target < len(pending):
            raise AssemblyError(
                f"line {line_no}: branch target {target} is outside the "
                f"program [0, {len(pending)})")
        return target

    # Pass 2: encode.
    instructions: List[Instruction] = []
    for line_no, mnemonic, args in pending:
        def need(count: int) -> None:
            if len(args) != count:
                raise AssemblyError(
                    f"line {line_no}: {mnemonic} expects {count} operands, "
                    f"got {len(args)}")

        if mnemonic in _THREE_REG:
            need(3)
            instructions.append(Instruction(
                _THREE_REG[mnemonic], rd=_parse_reg(args[0], line_no),
                ra=_parse_reg(args[1], line_no), rb=_parse_reg(args[2], line_no)))
        elif mnemonic in _REG_REG_IMM:
            need(3)
            instructions.append(Instruction(
                _REG_REG_IMM[mnemonic], rd=_parse_reg(args[0], line_no),
                ra=_parse_reg(args[1], line_no), imm=_parse_imm(args[2], line_no)))
        elif mnemonic == "ldi":
            need(2)
            instructions.append(Instruction(
                Op.LDI, rd=_parse_reg(args[0], line_no),
                imm=_parse_imm(args[1], line_no)))
        elif mnemonic == "ld":
            need(3)
            instructions.append(Instruction(
                Op.LD, rd=_parse_reg(args[0], line_no),
                ra=_parse_reg(args[1], line_no), imm=_parse_imm(args[2], line_no)))
        elif mnemonic in ("st", "sth"):
            need(3)
            instructions.append(Instruction(
                Op.ST if mnemonic == "st" else Op.STH,
                ra=_parse_reg(args[0], line_no),
                imm=_parse_imm(args[1], line_no), rb=_parse_reg(args[2], line_no)))
        elif mnemonic in _COND_BRANCH:
            need(2)
            instructions.append(Instruction(
                _COND_BRANCH[mnemonic], ra=_parse_reg(args[0], line_no),
                target=resolve(args[1], line_no)))
        elif mnemonic == "br":
            need(1)
            instructions.append(Instruction(Op.BR, target=resolve(args[0], line_no)))
        elif mnemonic == "call":
            need(2)
            instructions.append(Instruction(
                Op.CALL, rd=_parse_reg(args[0], line_no),
                target=resolve(args[1], line_no)))
        elif mnemonic == "ret":
            need(1)
            instructions.append(Instruction(Op.RET, ra=_parse_reg(args[0], line_no)))
        elif mnemonic == "jmp":
            need(1)
            instructions.append(Instruction(Op.JMP, ra=_parse_reg(args[0], line_no)))
        elif mnemonic in _NO_OPERAND:
            need(0)
            instructions.append(Instruction(_NO_OPERAND[mnemonic]))
        else:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")

    if not instructions:
        raise AssemblyError("no instructions in source")
    _validate_segments(seg_ranges)
    program = Program(name=name, instructions=instructions,
                      initial_memory=data)
    for directive, declared in seg_ranges.items():
        program.metadata[_SEGMENT_KIND[directive]] = [
            (lo, hi) for lo, hi, _ in declared]
    return program
