#!/usr/bin/env python3
"""Watch an SRT machine detect a fault, roll back, and recover.

Three acts:

1. a transient single-bit fault strikes a recovery-enabled SRT machine;
   the store comparator detects it, the machine rolls back to the last
   verified checkpoint, replays, and finishes ``recovered`` — with the
   drained-store stream prefix-identical to a fault-free run;
2. a permanently stuck functional unit strikes the same machine; every
   replay re-detects, the checkpoint ring runs out, and the run ends
   ``unrecoverable`` (the paper's uncovered-permanent-fault case);
3. a deliberately wedged machine (retirement vetoed) trips the
   forward-progress watchdog, which prints its hang forensics.

Run:  python examples/recovery_demo.py [benchmark] [instructions]
"""

import sys

from repro.core import MachineConfig, make_machine
from repro.core.faults import (FaultInjector, StuckFunctionalUnit,
                               TransientResultFault)
from repro.core.metrics import Termination
from repro.isa import generate_benchmark
from repro.isa.instructions import FuClass
from repro.pipeline.hooks import CoreHooks

BENCHMARK = sys.argv[1] if len(sys.argv) > 1 else "gcc"
INSTRUCTIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 800
WARMUP = 2000

CONFIG = MachineConfig(recovery_enabled=True, checkpoint_interval=400,
                       recovery_max_attempts=3)


def traced(machine, program):
    """Record the measured thread's drained-store stream."""
    hw = machine._measured[program.name]
    hw.core.drain_log[hw.tid] = []
    return machine, hw


def act1_transient(program):
    print("act 1 — transient fault, recovered")
    reference, ref_hw = traced(
        make_machine("srt", CONFIG, [program]), program)
    reference.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)
    golden = ref_hw.core.drain_log[ref_hw.tid]

    machine, hw = traced(make_machine("srt", CONFIG, [program]), program)
    FaultInjector(machine, [TransientResultFault(cycle=400, core_index=0,
                                                 bit=3)])
    result = machine.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)
    summary = result.recovery
    print(f"  termination       {result.termination.value}")
    print(f"  rollbacks         {summary['rollbacks']}")
    print(f"  rollback depth    {summary['rollback_depth_max']} instructions")
    print(f"  recovery latency  {summary['recovery_latency_last']} cycles")
    mine = hw.core.drain_log[hw.tid]
    ok = mine == golden[:len(mine)]
    print(f"  drained stores    {len(mine)}, "
          f"{'prefix matches fault-free run' if ok else 'MISMATCH (bug!)'}")
    assert result.termination is Termination.RECOVERED
    assert ok


def act2_permanent(program):
    print("act 2 — permanent fault, unrecoverable")
    machine = make_machine("srt", CONFIG, [program])
    FaultInjector(machine, [StuckFunctionalUnit(
        core_index=0, fu_class=FuClass.INT, unit_index=0, bit=3)])
    result = machine.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)
    summary = result.recovery
    print(f"  termination       {result.termination.value} "
          f"at cycle {result.cycles}")
    print(f"  rollbacks         {summary['rollbacks']} "
          f"(ring exhausted, run abandoned)")
    assert result.termination is Termination.UNRECOVERABLE


class RetirementJammer(CoreHooks):
    """Veto every load retirement past cycle 100: progress stops."""

    def can_retire_load(self, core, thread, uop, now):
        return now < 100


def act3_wedged(program):
    print("act 3 — wedged machine, watchdog forensics")
    machine = make_machine("base", MachineConfig(watchdog_window=1024),
                           [program])
    machine.cores[0].hooks = RetirementJammer()
    result = machine.run(max_instructions=INSTRUCTIONS)
    assert result.termination.is_wedged
    report = machine.watchdog.report
    for line in report.format().splitlines()[:6]:
        print(f"  {line}")
    print("  ... (full forensics in RunResult.hang_report)")


def main():
    program = generate_benchmark(BENCHMARK)
    act1_transient(program)
    print()
    act2_permanent(program)
    print()
    act3_wedged(program)
    print("\nall three verdicts rendered as designed")


if __name__ == "__main__":
    main()
