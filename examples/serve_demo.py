#!/usr/bin/env python3
"""Simulation-as-a-service, end to end.

Starts an in-process serve daemon, submits the PR's acceptance demo —
two concurrent identical campaign submissions (coalesced onto one
execution), a paper figure, a cache-hit resubmission, a daemon
restart answered from the disk cache — and prints the /metrics
counters at each step. The complete lifecycle from `docs/SERVING.md`
in one script, no sockets left behind.

Run:  python examples/serve_demo.py [workload] [injections]
"""

import sys
import tempfile

from repro.serve import BackgroundServer, ServeClient

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
INJECTIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 6

CAMPAIGN = {
    "kinds": ["base", "srt"],
    "workloads": [WORKLOAD],
    "models": ["transient-result"],
    "injections": INJECTIONS,
    "instructions": 300,
    "warmup": 600,
}


def show_counters(client: ServeClient, label: str) -> None:
    counters = client.metrics()["counters"]
    print(f"  [{label}] accepted={counters['accepted']} "
          f"completed={counters['completed']} "
          f"coalesced={counters['coalesced']} "
          f"cache_hits={counters['cache_hits']}")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-serve-demo-")
    print(f"== serve demo (workdir {workdir}) ==\n")

    with BackgroundServer(workdir=workdir, max_running=2) as daemon:
        client = ServeClient(daemon.url)
        client.ping()
        print(f"daemon listening on {daemon.url}")

        print("\n-- two concurrent identical campaign submissions --")
        first = client.submit("campaign", CAMPAIGN, client="alice")["job"]
        second = client.submit("campaign", CAMPAIGN, client="bob")["job"]
        print(f"  {first['id']} state={first['state']}")
        print(f"  {second['id']} coalesced_with={second['coalesced_with']}"
              f"  (one execution, two answers)")
        client.wait_for(first["id"])
        res1 = client.result(first["id"])["job"]["result"]
        res2 = client.result(second["id"])["job"]["result"]
        assert res1 == res2
        for stratum, stats in sorted(res1["strata"].items()):
            print(f"  {stratum}: {stats['total']} injections, "
                  f"coverage {stats['coverage']}")
        show_counters(client, "after campaign")

        print("\n-- a paper figure as a job --")
        fig = client.submit("experiment", {"experiment": "fig6",
                                           "instructions": 300,
                                           "warmup": 600})["job"]
        final = client.wait_for(fig["id"])["job"]
        print(f"  {fig['id']} -> {final['state']}")

        print("\n-- identical resubmission: served from cache --")
        again = client.submit("campaign", CAMPAIGN)["job"]
        print(f"  {again['id']} state={again['state']} "
              f"cache_hit={again['cache_hit']}  (no new simulation)")
        show_counters(client, "after resubmit")

    print("\n-- daemon restarted: the disk cache answers --")
    with BackgroundServer(workdir=workdir) as daemon:
        client = ServeClient(daemon.url)
        client.ping()
        job = client.submit("campaign", CAMPAIGN)["job"]
        print(f"  {job['id']} state={job['state']} "
              f"cache_hit={job['cache_hit']}")
        assert job["state"] == "done" and job["cache_hit"]
        show_counters(client, "fresh daemon")

    print("\ndrained cleanly; artifacts + cache under", workdir)


if __name__ == "__main__":
    main()
