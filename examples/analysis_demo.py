#!/usr/bin/env python3
"""Static verification of a RISC-R program: buggy -> report -> fixed.

Walks the program-verifier half of `repro.analysis` end to end:
assemble a deliberately buggy kernel, print the findings the dataflow
checks produce (an uninitialized read, a store outside the declared
data segment, an unfenced publish to shared memory, and control that
can run off the end), then assemble the corrected kernel and show it
verifying clean — the same gate every generated workload must pass
before a machine runs it.

Run:  python examples/analysis_demo.py
"""

from repro.analysis import gate_program, verify_program
from repro.analysis.checks import ProgramVerificationError
from repro.isa import assemble

# A producer kernel that fills a buffer and publishes a "ready" flag to
# a shared mailbox.  Four distinct defects are planted; the verifier
# pins each one to its pc and rule.
BUGGY = """
    .segment 0x2000 0x2100       ; the buffer stores may target
    .segment 0x3000 0x3010       ; ...and the mailbox words
    .shared  0x3000 0x3010       ; the mailbox is cross-thread visible
    ldi  r1, 0x2000              ; buffer base
    ldi  r2, 8                   ; elements
    ldi  r3, 0                   ; index (bytes)
fill:
    add  r4, r1, r3
    st   r4, 0, r7               ; BUG 1: payload r7 never written (A1)
    addi r3, r3, 8
    addi r2, r2, -1
    bnez r2, fill
    ldi  r5, 0x2200
    st   r5, 0, r3               ; BUG 2: 0x2200 is outside .segment (A5)
    ldi  r6, 0x3000
    st   r6, 0, r2               ; BUG 3: publish without a membar (A6)
    beqz r2, done
done:
    nop                          ; BUG 4: control falls off the end (A8)
"""

FIXED = """
    .segment 0x2000 0x2100
    .segment 0x3000 0x3010
    .shared  0x3000 0x3010
    ldi  r1, 0x2000
    ldi  r2, 8
    ldi  r3, 0
    ldi  r7, 0xA5                ; fix 1: initialize the payload
fill:
    add  r4, r1, r3
    st   r4, 0, r7
    addi r3, r3, 8
    addi r2, r2, -1
    bnez r2, fill
    ldi  r5, 0x20F8              ; fix 2: last word inside the segment
    st   r5, 0, r3
    membar                       ; fix 3: fence the publish
    ldi  r6, 0x3000
    st   r6, 0, r2
    beqz r2, done
done:
    halt                         ; fix 4: terminate the program
"""


def show(title, report):
    print(f"== {title} " + "=" * max(0, 56 - len(title)))
    if not report.findings:
        print("   clean: no findings")
    for finding in report.findings:
        print(f"   {finding}")
    print(f"   -> {len(report.errors)} error(s), "
          f"{len(report.warnings)} warning(s)\n")


def main():
    buggy = assemble(BUGGY, name="producer-buggy")
    report = verify_program(buggy)
    show("buggy producer", report)
    assert not report.ok(), "the planted defects must be caught"
    assert {f.rule for f in report.errors} >= {
        "A1-uninit-read", "A5-oob-store", "A6-missing-membar",
        "A8-falls-off-end"}

    # The generator runs this gate on every program it emits; a buggy
    # program never reaches a machine.
    try:
        gate_program(buggy)
    except ProgramVerificationError as exc:
        print("gate refused the buggy program:")
        print("   " + str(exc).splitlines()[0] + "\n")

    fixed = assemble(FIXED, name="producer-fixed")
    report = verify_program(fixed)
    show("fixed producer", report)
    assert report.ok(strict=True), "the fixed kernel must be clean"
    assert gate_program(fixed) is fixed
    print("the fixed program passes the same validity gate the workload "
          "generator enforces.")


if __name__ == "__main__":
    main()
