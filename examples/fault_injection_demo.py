#!/usr/bin/env python3
"""Fault-injection campaign: what each architecture actually catches.

Injects single-bit transient faults at many points into the base, SRT,
CRT, and lockstep machines and a permanent stuck-functional-unit fault
into SRT with and without preferential space redundancy, then classifies
every run against the golden architectural model:

- detected — output comparison / divergence check fired;
- masked   — the corrupted value was architecturally dead;
- latent   — execution diverged but no wrong value left the sphere yet;
- SDC      — a wrong store reached memory with nobody noticing.

Run:  python examples/fault_injection_demo.py [benchmark] [injections]
"""

import sys
from collections import Counter

from repro.core import MachineConfig, make_machine
from repro.core.faults import (FaultOutcome, StuckFunctionalUnit,
                               TransientResultFault, run_fault_experiment)
from repro.isa import generate_benchmark
from repro.isa.instructions import FuClass

BENCHMARK = sys.argv[1] if len(sys.argv) > 1 else "gcc"
INJECTIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 16
INSTRUCTIONS = 1200


def campaign(kind, program):
    outcomes = Counter()
    for index in range(INJECTIONS):
        machine = make_machine(kind, MachineConfig(), [program])
        core_index = 1 if (kind in ("lockstep", "crt") and index % 2) else 0
        fault = TransientResultFault(cycle=80 + 61 * index,
                                     core_index=core_index,
                                     bit=(7 * index + 1) % 64)
        outcome = run_fault_experiment(machine, program, fault,
                                       instructions=INSTRUCTIONS,
                                       warmup=4000)
        outcomes[outcome] += 1
    return outcomes


def print_outcomes(label, outcomes):
    total = sum(outcomes.values())
    cells = ", ".join(f"{outcome.value}: {count}"
                      for outcome, count in sorted(
                          outcomes.items(), key=lambda kv: kv[0].value))
    print(f"  {label:<10s} ({total} injections)  {cells}")


def main():
    program = generate_benchmark(BENCHMARK)
    print(f"transient single-bit faults on {program.name}:")
    for kind in ("base", "srt", "crt", "lockstep"):
        print_outcomes(kind, campaign(kind, program))

    print("\npermanent stuck-functional-unit faults on SRT:")
    for psr in (True, False):
        outcomes = Counter()
        config = MachineConfig(preferential_space_redundancy=psr)
        for unit in range(4):
            machine = make_machine("srt", config, [program])
            fault = StuckFunctionalUnit(core_index=0, fu_class=FuClass.INT,
                                        unit_index=unit, bit=1)
            outcome = run_fault_experiment(machine, program, fault,
                                           instructions=INSTRUCTIONS,
                                           warmup=4000)
            outcomes[outcome] += 1
        print_outcomes("PSR on" if psr else "PSR off", outcomes)

    print("\nthe coverage story:")
    print("  - the base machine lets corruption through silently (SDC);")
    print("  - SRT/CRT/lockstep never let a wrong store leave the sphere;")
    print("  - PSR guarantees space redundancy, so even a permanently")
    print("    stuck unit corrupts only one copy and is caught.")


if __name__ == "__main__":
    main()
