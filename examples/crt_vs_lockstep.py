#!/usr/bin/env python3
"""The paper's headline comparison: lockstepping vs CRT on a CMP.

Runs a multiprogrammed workload (two applications) on:

- Lock0 — lockstepped cores with an idealised zero-cycle checker,
- Lock8 — a realistic checker adding 8 cycles to every miss request,
- CRT   — chip-level redundant threading with cross-coupled pairs,

and reports per-program SMT-Efficiency against single-thread base runs.
CRT's advantage comes from cross-coupling: each core runs the leading
thread of one program next to the trailing thread of the *other*, so the
resources trailing threads free (no misspeculation, no data-cache or
load-queue use) feed the co-resident leading thread.

Run:  python examples/crt_vs_lockstep.py [progA] [progB] [instructions]
"""

import sys

from repro.core import MachineConfig, make_machine
from repro.isa import generate_benchmark

PROG_A = sys.argv[1] if len(sys.argv) > 1 else "gcc"
PROG_B = sys.argv[2] if len(sys.argv) > 2 else "swim"
INSTRUCTIONS = int(sys.argv[3]) if len(sys.argv) > 3 else 1500
WARMUP = 12_000


def run(kind, programs, **kwargs):
    machine = make_machine(kind, MachineConfig(), programs, **kwargs)
    return machine.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)


def main():
    programs = [generate_benchmark(PROG_A), generate_benchmark(PROG_B)]
    names = [p.name for p in programs]
    print(f"workload: {names[0]} + {names[1]}, "
          f"{INSTRUCTIONS} instructions per program\n")

    baseline = {}
    for program in programs:
        result = run("base", [program])
        baseline[program.name] = result.ipc_of(program.name)
        print(f"single-thread base {program.name:<10s}: "
              f"IPC {baseline[program.name]:.3f}")
    print()

    rows = []
    for label, kind, kwargs in [("Lock0", "lockstep", {"checker_latency": 0}),
                                ("Lock8", "lockstep", {"checker_latency": 8}),
                                ("CRT", "crt", {})]:
        programs = [generate_benchmark(PROG_A), generate_benchmark(PROG_B)]
        result = run(kind, programs, **kwargs)
        efficiencies = {t.name: t.ipc / baseline[t.name]
                        for t in result.threads}
        mean = sum(efficiencies.values()) / len(efficiencies)
        rows.append((label, efficiencies, mean))
        cells = "  ".join(f"{name}={eff:.3f}"
                          for name, eff in efficiencies.items())
        print(f"{label:<6s} SMT-Efficiency: {cells}  mean={mean:.3f}")

    lock8_mean = rows[1][2]
    crt_mean = rows[2][2]
    print(f"\nCRT vs Lock8: {100 * (crt_mean / lock8_mean - 1):+.1f}% "
          f"(paper: +13% average, up to +22%)")


if __name__ == "__main__":
    main()
