#!/usr/bin/env python3
"""Deterministic chaos, end to end.

Runs the same small campaign twice — once clean, once with worker
crashes and torn disk writes armed from a seeded plan — and shows the
resilience layer converging on byte-identical results.  Then points a
chaos rule at one specific task so it kills its worker every attempt,
and shows the engine quarantining it as a structured `infra-failure`
row instead of wedging.  The full recipe is in `docs/CHAOS.md`.

Run:  python examples/chaos_demo.py [injections] [jobs]
"""

import re
import sys
import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, CampaignStore
from repro.campaign.engine import run_campaign
from repro.chaos import ChaosPlan, ChaosRule, armed

INJECTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 6
JOBS = int(sys.argv[2]) if len(sys.argv) > 2 else 2


def main() -> None:
    spec = CampaignSpec(
        kinds=("srt",),
        workloads=("compress",),
        models=("transient-result",),
        injections=INJECTIONS,
        instructions=120,
        warmup=20,
    )
    with tempfile.TemporaryDirectory() as out:
        base = Path(out)

        # -- clean reference ---------------------------------------------
        run_campaign(spec, base / "clean", jobs=JOBS)
        clean_bytes = (base / "clean" / "results.jsonl").read_bytes()
        print(f"clean run: {spec.total_tasks()} injections, "
              f"{len(clean_bytes)} bytes")

        # -- same campaign, crashes + torn writes armed -------------------
        plan = ChaosPlan(seed=13, rules=(
            ChaosRule("campaign.worker.task", "crash", p=0.4),
            ChaosRule("campaign.store.append", "torn-write", p=0.5),
        ))
        with armed(plan):
            summary = run_campaign(spec, base / "chaos", jobs=JOBS)
        infra = summary.get("infra", {})
        chaos_bytes = (base / "chaos" / "results.jsonl").read_bytes()
        print(f"chaos run: state={summary['state']}, "
              f"pool_rebuilds={infra.get('pool_rebuilds', 0)}, "
              f"chunk_retries={infra.get('chunk_retries', 0)}")
        identical = chaos_bytes == clean_bytes
        print(f"byte-identical to clean run: {identical}")
        assert identical, "resilience layer failed to converge"

        # -- a deterministic killer is quarantined, not fatal -------------
        victim = CampaignStore(base / "clean").records()[0]["task_id"]
        killer = ChaosPlan(rules=(
            ChaosRule("campaign.worker.task", "crash",
                      key_pattern=f"^{re.escape(victim)}$",
                      max_attempt=99),))
        with armed(killer):
            summary = run_campaign(spec, base / "quarantine", jobs=JOBS)
        records = CampaignStore(base / "quarantine").records()
        row = next(r for r in records if r["task_id"] == victim)
        print(f"\nvictim {victim} crashed its worker "
              f"{row['infra']['pool_kills']}x -> outcome "
              f"{row['outcome']!r}; campaign still "
              f"{summary['state']} with "
              f"{len(records)}/{spec.total_tasks()} rows")
        assert summary["state"] == "complete"
        assert row["outcome"] == "infra-failure"


if __name__ == "__main__":
    main()
