#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one go.

Runs the complete experiment suite — Figures 6 through 11 plus the
line-predictor statistics, fault-coverage tables, and the ablations —
and prints each as a text table with the paper's expected shape noted.

This is the long-running version of what ``pytest benchmarks/`` checks;
scale it with the two optional arguments.

Run:  python examples/reproduce_paper.py [instructions] [warmup]
"""

import sys
import time

from repro.harness import (Runner, ablation_checker_latency,
                           ablation_cross_latency, ablation_fetch_policy,
                           ablation_lvq_size, ablation_slack_fetch,
                           ablation_trailing_fetch_mode, fault_coverage,
                           fig6_srt_one_thread, fig7_psr,
                           fig8_srt_two_threads, fig9_store_lifetime,
                           fig10_crt_one_thread, fig11_crt_multithread,
                           line_predictor_rates,
                           psr_permanent_fault_coverage, render_table,
                           store_queue_sweep)

INSTRUCTIONS = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
WARMUP = int(sys.argv[2]) if len(sys.argv) > 2 else 12_000

EXPERIMENTS = [
    ("Figure 6 — SRT, one logical thread "
     "(paper: ~32% degradation; ptsq recovers ~2%)",
     fig6_srt_one_thread),
    ("Figure 7 — preferential space redundancy "
     "(paper: 65% same-unit -> 0.06%)",
     fig7_psr),
    ("Figure 8 — SRT, two logical threads "
     "(paper: ~40% degradation; ptsq -> ~32%)",
     fig8_srt_two_threads),
    ("Section 7.1 — store lifetimes (paper: ~+39 cycles under SRT)",
     fig9_store_lifetime),
    ("Store-queue size sweep (SRT + ptsq)",
     store_queue_sweep),
    ("Section 8 — one logical thread on the CMP machines "
     "(paper: CRT ~ lockstep)",
     fig10_crt_one_thread),
    ("Section 8 — multithreaded lockstep vs CRT "
     "(paper: CRT +13% mean, +22% max over Lock8)",
     fig11_crt_multithread),
    ("Section 4.4 — line predictor rates "
     "(paper: 14-28% base; 0 trailing misfetches)",
     line_predictor_rates),
    ("Fault coverage — transient faults per machine kind",
     fault_coverage),
    ("Fault coverage — stuck functional unit with/without PSR",
     psr_permanent_fault_coverage),
    ("Ablation — trailing-priority vs ICOUNT fetch",
     ablation_fetch_policy),
    ("Ablation — CRT cross-core latency",
     ablation_cross_latency),
    ("Ablation — lockstep checker latency",
     ablation_checker_latency),
    ("Ablation — load value queue size",
     ablation_lvq_size),
    ("Ablation — explicit slack fetch on top of the LPQ",
     ablation_slack_fetch),
    ("Ablation — LPQ vs shared-predictor trailing fetch",
     ablation_trailing_fetch_mode),
]


def main():
    runner = Runner(instructions=INSTRUCTIONS, warmup=WARMUP)
    print(f"reproducing all experiments at {INSTRUCTIONS} instructions "
          f"per thread (warmup {WARMUP})\n")
    total_start = time.time()
    for title, experiment in EXPERIMENTS:
        start = time.time()
        result = experiment(runner)
        elapsed = time.time() - start
        print(f"=== {title}")
        print(render_table(result))
        print(f"    [{elapsed:.1f}s]\n")
    print(f"total: {time.time() - total_start:.0f}s")


if __name__ == "__main__":
    main()
