#!/usr/bin/env python3
"""Quickstart: run one program on the base machine and on SRT.

Builds the gcc-like synthetic benchmark, runs it alone on the base SMT
machine, then redundantly (leading + trailing hardware threads) on the
SRT machine, and reports the performance cost of fault detection plus
the RMT bookkeeping the paper describes: load-value-queue traffic, line
prediction chunks, store comparisons, and store-queue lifetimes.

Run:  python examples/quickstart.py [benchmark] [instructions]
"""

import sys

from repro.core import MachineConfig, make_machine
from repro.isa import generate_benchmark

BENCHMARK = sys.argv[1] if len(sys.argv) > 1 else "gcc"
INSTRUCTIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 2000
WARMUP = 15_000


def main():
    program = generate_benchmark(BENCHMARK)
    print(f"benchmark: {program.name} "
          f"({program.metadata['description']})")
    print(f"static instructions: {len(program)}, "
          f"measuring {INSTRUCTIONS} committed instructions\n")

    base = make_machine("base", MachineConfig(), [program])
    base_result = base.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)
    base_ipc = base_result.ipc_of(program.name)
    print(f"base machine : IPC = {base_ipc:.3f} "
          f"({base_result.cycles} cycles)")

    srt = make_machine("srt", MachineConfig(), [program])
    srt_result = srt.run(max_instructions=INSTRUCTIONS, warmup=WARMUP)
    srt_ipc = srt_result.ipc_of(program.name)
    degradation = 100 * (1 - srt_ipc / base_ipc)
    print(f"SRT machine  : IPC = {srt_ipc:.3f} "
          f"({srt_result.cycles} cycles)")
    print(f"cost of redundancy: {degradation:.1f}% "
          f"(paper reports ~32% on its larger native model)\n")

    pair = srt.controller.pairs[0]
    leading = srt.cores[0].threads[0]
    lifetime = (leading.stats.store_lifetime_sum
                / max(leading.stats.store_lifetime_count, 1))
    print("RMT bookkeeping for the redundant pair:")
    print(f"  load values replicated through the LVQ : "
          f"{pair.lvq.stats.writes}")
    print(f"  line-prediction chunks forwarded       : "
          f"{pair.lpq.stats.chunks_pushed} "
          f"(mean length {pair.lpq.stats.mean_chunk_length:.1f})")
    print(f"  stores compared before leaving sphere  : "
          f"{pair.comparator.stats.comparisons} "
          f"(mismatches: {pair.comparator.stats.mismatches})")
    print(f"  leading-store queue lifetime           : "
          f"{lifetime:.1f} cycles (paper: ~39)")
    print(f"  trailing-thread misfetches/mispredicts : "
          f"{srt.cores[0].threads[1].stats.misfetches}/"
          f"{srt.cores[0].threads[1].stats.branch_mispredicts}")
    print(f"  faults detected                        : "
          f"{srt_result.faults_detected} (fault-free run)")


if __name__ == "__main__":
    main()
