#!/usr/bin/env python3
"""Static AVF analysis cross-checked against the injection oracle.

Walks `repro.avf` end to end on a small checksum kernel:

1. classify every architectural fault site (register bits, memory-word
   bits, destination fields) as masked or ACE and print the per-
   component AVF table;
2. show *why* individual sites get their class — a demanded bit, a
   logically-masked bit, a dead register;
3. cross-validate a batch of predicted-masked sites against the
   architectural fault-injection oracle: none may be DETECTED
   (the analyzer's soundness contract).

Run:  python examples/avf_demo.py [steps]
"""

import sys

from repro.avf.analyzer import MASKED_CLASSES, analyze_program
from repro.avf.report import render_avf
from repro.avf.sites import ARCH_MODELS, SiteUniverse
from repro.core.faults import (ArchMemoryFault, ArchRegisterFault,
                               run_arch_fault_experiment)
from repro.isa import assemble
from repro.util.rng import DeterministicRng

# A checksum kernel with deliberately mixed vulnerability: r4's low
# byte is ACE (it reaches the stores through the AND), its high bits
# are logically masked, and r6 is written but never read (dead).
KERNEL = """
    .data 0x1000 0x1234
    .data 0x1008 0x5678
    .segment 0x2000 0x2100
    ldi  r1, 0x1000              ; input base
    ldi  r2, 0x2000              ; output base
    ldi  r3, 0                   ; checksum
    ldi  r6, 99                  ; dead: never read again
    ld   r4, r1, 0
    andi r5, r4, 0xFF            ; only r4's low byte survives
    add  r3, r3, r5
    ld   r4, r1, 8
    andi r5, r4, 0xFF
    add  r3, r3, r5
    st   r2, 0, r3               ; publish the checksum
    halt
"""


def main() -> int:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    program = assemble(KERNEL, name="checksum")
    avf = analyze_program(program, steps=steps)

    print("=== Per-component AVF ===")
    print(render_avf(avf.summary()))

    print()
    print("=== Why individual sites get their class ===")
    # pc 5 is the first andi: r4 feeds it, so its low byte is demanded.
    for reg, bit, note in [(4, 0, "low byte reaches the store"),
                           (4, 40, "ANDed away before any store"),
                           (6, 0, "r6 is never read again")]:
        cls = avf.classify_register(5, reg, bit)
        print(f"  r{reg} bit {bit:2d} at pc 5: {cls:<14} ({note})")

    print()
    print("=== Soundness spot-check vs the injection oracle ===")
    universe = SiteUniverse("compress", steps)
    rng = DeterministicRng("avf-demo")
    checked = 0
    for model in ARCH_MODELS:
        for _ in range(40):
            site = universe.sample(rng, model)
            if universe.classify(model, site) not in MASKED_CLASSES:
                continue
            fault = _fault_for(model, site)
            if fault is None:
                continue
            report = run_arch_fault_experiment(
                universe.program, fault, instructions=steps)
            checked += 1
            if report.outcome.value in ("detected",
                                        "silent-data-corruption"):
                print(f"  VIOLATION: {model} {site} -> "
                      f"{report.outcome.value}")
                return 1
    print(f"  {checked} predicted-masked sites injected, "
          "0 detected — soundness holds")
    return 0


def _fault_for(model, site):
    if model == "arch-register":
        return ArchRegisterFault(step=site["step"], reg=site["reg"],
                                 bit=site["bit"])
    if model == "arch-memory":
        return ArchMemoryFault(step=site["step"], addr=site["addr"],
                               bit=site["bit"])
    return None  # dest-field spot checks live in the property test


if __name__ == "__main__":
    sys.exit(main())
