#!/usr/bin/env python3
"""Run your own assembly program redundantly on the SRT machine.

Shows the full public path for custom workloads: write RISC-R assembly,
assemble it, execute it on the golden architectural model, run it on the
SRT machine, and confirm the pipeline retired exactly the architectural
stream while the redundant threads checked each other.

Run:  python examples/custom_program.py
"""

from repro.core import MachineConfig, make_machine
from repro.isa import FunctionalExecutor, assemble

# A little checksum kernel: walks an array, mixing values into an
# accumulator, and stores running checksums back — plenty of loads,
# stores, branches, and a call, all of it verified redundantly.
SOURCE = """
    ldi r1, 0x2000        ; array base
    ldi r2, 64            ; elements
    ldi r3, 0             ; checksum
    ldi r4, 0             ; index (bytes)
init:
    add r5, r1, r4
    st  r5, 0, r4         ; array[i] = i * 8
    addi r4, r4, 8
    addi r2, r2, -1
    bnez r2, init

    ldi r2, 64
    ldi r4, 0
sum:
    add r5, r1, r4
    ld  r6, r5, 0
    call r62, mix
    st  r5, 512, r3       ; store running checksum
    addi r4, r4, 8
    addi r2, r2, -1
    bnez r2, sum
    membar
    halt

mix:                      ; r3 = rotate(r3) ^ r6
    ldi r7, 13
    shl r8, r3, r7
    ldi r7, 51
    shr r9, r3, r7
    or  r3, r8, r9
    xor r3, r3, r6
    ret r62
"""


def main():
    program = assemble(SOURCE, name="checksum")
    print(f"assembled {len(program)} instructions")

    # Golden architectural run.
    executor = FunctionalExecutor(program)
    executor.run(100_000)
    golden_checksum = executor.state.read_reg(3)
    print(f"architectural checksum: {golden_checksum:#018x}")

    # Redundant run on SRT.
    machine = make_machine("srt", MachineConfig(), [program])
    result = machine.run(max_instructions=100_000, max_cycles=500_000)
    leading = machine.cores[0].threads[0]
    assert leading.done, "program did not finish"

    pipeline_checksum = leading.rename.architectural_value(3)
    print(f"SRT pipeline checksum : {pipeline_checksum:#018x}")
    assert pipeline_checksum == golden_checksum, "pipeline diverged!"

    pair = machine.controller.pairs[0]
    print(f"\nretired {leading.stats.retired} instructions in "
          f"{result.cycles} cycles (IPC {result.threads[0].ipc:.2f})")
    print(f"stores compared: {pair.comparator.stats.comparisons}, "
          f"mismatches: {pair.comparator.stats.mismatches}")
    print(f"loads replicated: {pair.lvq.stats.writes}")
    print(f"faults detected: {result.faults_detected} (fault-free run)")
    print("\nleading and trailing threads agreed on every output.")


if __name__ == "__main__":
    main()
