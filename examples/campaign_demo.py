#!/usr/bin/env python3
"""Statistical fault-injection campaign, end to end.

Runs a small stratified campaign (base vs SRT under transient result
faults), kills it halfway through on purpose, resumes it, and prints
the coverage report with Wilson confidence intervals — the complete
lifecycle from `docs/CAMPAIGNS.md` in one script.

Run:  python examples/campaign_demo.py [workload] [injections] [jobs]
"""

import sys
import tempfile
from pathlib import Path

from repro.campaign import (CampaignEngine, CampaignSpec, CampaignStore,
                            render_report)

WORKLOAD = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
INJECTIONS = int(sys.argv[2]) if len(sys.argv) > 2 else 6
JOBS = int(sys.argv[3]) if len(sys.argv) > 3 else 1


def main() -> None:
    spec = CampaignSpec(
        kinds=("base", "srt"),
        workloads=(WORKLOAD,),
        models=("transient-result",),
        injections=INJECTIONS,
        instructions=300,
        warmup=900,
    )
    with tempfile.TemporaryDirectory() as out:
        print(f"campaign {spec.content_hash()}: "
              f"{spec.total_tasks()} injections "
              f"({'+'.join(spec.kinds)} x {WORKLOAD}), jobs={JOBS}")

        # -- first run ----------------------------------------------------
        engine = CampaignEngine(spec, out, jobs=JOBS)
        summary = engine.run()
        print(f"first run: {summary['executed']} injections in "
              f"{summary['elapsed_s']}s")

        # -- simulate a mid-run kill -------------------------------------
        results = Path(out) / "results.jsonl"
        lines = results.read_bytes().splitlines(keepends=True)
        keep = len(lines) // 2
        results.write_bytes(b"".join(lines[:keep]))
        print(f"simulated kill: artifact truncated to {keep} records")

        # -- resume: completed work is never re-executed ------------------
        summary = CampaignEngine(spec, out, jobs=JOBS).run()
        print(f"resume: skipped {summary['already_complete']} completed, "
              f"re-ran only {summary['executed']}")

        # -- aggregate ----------------------------------------------------
        print()
        print(render_report(CampaignStore(out).records()))


if __name__ == "__main__":
    main()
